"""The implementation library: the coder agent's toolbox.

The coder does not emit free-form Python (there is no code-writing LLM in this
reproduction); instead it instantiates *implementation templates* from this
library, parameterized by the logical-plan node (keyword lists, weights,
thresholds, join keys).  Each template family offers one or more variants with
different cost/accuracy profiles -- the physical alternatives the optimizer
chooses among, e.g. an embedding-similarity scorer vs. a cheap keyword-overlap
scorer, or a scene-statistics poster classifier vs. a per-poster VLM query.

Every variant produces a :class:`~repro.fao.function.GeneratedFunction` body
plus a human-readable source text that is persisted by the registry and shown
verbatim in fine-grained explanations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import FunctionGenerationError
from repro.fao.function import FunctionBody, FunctionContext
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.relational import operators as ops


# ---------------------------------------------------------------------------
# Helpers shared by the template builders
# ---------------------------------------------------------------------------
def _primary_input(node: LogicalPlanNode, inputs: Dict[str, Table]) -> Table:
    """The node's first input table."""
    name = node.inputs[0]
    if name not in inputs:
        raise FunctionGenerationError(
            f"function {node.name!r} expected input {name!r}, got {sorted(inputs)}")
    return inputs[name]


def _extend_table_columns(source: Table, output_name: str,
                          new_columns: List[Tuple[str, DataType]],
                          vectors: Dict[str, List[Any]]) -> Table:
    """COW-fork ``source`` and set whole computed column vectors on the fork.

    The fork shares every untouched source column with the input (zero-copy);
    only the computed columns are materialized.  This is the whole-column
    write path every scoring body funnels through.
    """
    schema = Schema(list(source.schema.columns))
    for column_name, data_type in new_columns:
        if not schema.has_column(column_name):
            schema = schema.add(Column(column_name, data_type))
    store = source._store.fork()
    result = Table._adopt(output_name, schema, store,
                          description=source.description,
                          lossy_columns=source.lossy_columns)
    length = len(source)
    for column_name, _ in new_columns:
        col = schema.column(column_name)
        values = vectors.get(column_name)
        if values is None:
            values = [None] * length
        store.set_column(col.name, [col.validate(v) for v in values])
    return result


def _extend_table(source: Table, output_name: str,
                  new_columns: List[Tuple[str, DataType]],
                  compute: Callable[[Dict[str, Any]], Dict[str, Any]]) -> Table:
    """Add computed columns, evaluating ``compute`` once per row in order.

    Row-compatibility shim over :func:`_extend_table_columns`: the per-row
    results are transposed into column vectors and written in one shot, so
    the source's own columns are never copied.
    """
    computed = [compute(row) for row in source]
    vectors: Dict[str, List[Any]] = {
        column_name: [values.get(column_name) for values in computed]
        for column_name, _ in new_columns
    }
    return _extend_table_columns(source, output_name, new_columns, vectors)


def _filter_table(source: Table, output_name: str,
                  keep: Callable[[Dict[str, Any]], bool]) -> Table:
    """Keep rows of ``source`` that satisfy ``keep`` (position gather)."""
    positions = [i for i, row in enumerate(source) if keep(row)]
    return Table._adopt(output_name, Schema(list(source.schema.columns)),
                        source._store.gather(positions),
                        description=source.description,
                        lossy_columns=source.lossy_columns)


def _filter_table_column(source: Table, output_name: str, column: str,
                         keep_value: Callable[[Any], bool]) -> Table:
    """Whole-column filter: apply ``keep_value`` over one column's vector."""
    vector = _safe_vector(source, column)
    positions = [i for i, value in enumerate(vector) if keep_value(value)]
    return Table._adopt(output_name, Schema(list(source.schema.columns)),
                        source._store.gather(positions),
                        description=source.description,
                        lossy_columns=source.lossy_columns)


def _safe_vector(table: Table, name: str) -> List[Any]:
    """One column's raw vector; all-NULL when the column does not exist.

    Mirrors ``row.get(name)`` — scoring templates routinely probe columns
    that only some pipelines produce.  Treat the result as read-only.
    """
    store = table._store
    resolved = store.resolve(name)
    if resolved is None:
        return [None] * len(table)
    return store.column(resolved)


def _rows_by_key(table: Table, key: str) -> Dict[Any, List[Dict[str, Any]]]:
    """Group a table's rows by one column."""
    grouped: Dict[Any, List[Dict[str, Any]]] = {}
    for row in table:
        grouped.setdefault(row.get(key), []).append(row)
    return grouped


def _batch_size(context: FunctionContext) -> int:
    """The executor's vectorization hint (0/1 = row-at-a-time)."""
    return max(0, int(getattr(context, "batch_size", 0) or 0))


def _extend_table_rows(source: Table, output_name: str,
                       new_columns: List[Tuple[str, DataType]],
                       computed: List[Dict[str, Any]]) -> Table:
    """Vectorized twin of :func:`_extend_table`: the per-row columns were
    precomputed (one batched model call per chunk), so feed them back in
    source-row order through the same code path."""
    values = iter(computed)
    return _extend_table(source, output_name, new_columns,
                         lambda row: next(values))


def _chunks(count: int, size: int):
    """Yield ``range`` slices covering ``count`` rows in ``size`` chunks."""
    for start in range(0, count, size):
        yield start, min(count, start + size)


# ---------------------------------------------------------------------------
# Implementation specs
# ---------------------------------------------------------------------------
@dataclass
class ImplementationSpec:
    """One candidate implementation of a template family.

    ``batchable`` marks variants whose body vectorizes: given a
    ``FunctionContext.batch_size`` hint it collects per-row model inputs
    into column vectors and issues one batched call per chunk.
    ``batch_setup_tokens`` is the per-call setup share of
    ``cost_per_row_tokens`` that a batch then pays once per chunk — the
    optimizer's batch-aware pricing uses it.
    """

    family: str
    variant: str
    implementation_kind: str
    accuracy_prior: float
    cost_per_row_tokens: float
    build: Callable[[LogicalPlanNode], Tuple[FunctionBody, str]]
    description: str = ""
    batchable: bool = False
    batch_setup_tokens: float = 0.0


class ImplementationLibrary:
    """Maps node families to candidate implementations."""

    def __init__(self):
        self._builders: Dict[str, List[ImplementationSpec]] = {}
        self._register_all()

    # -- public API ----------------------------------------------------------------
    def families(self) -> List[str]:
        """All known template families."""
        return sorted(self._builders)

    def classify_node(self, node: LogicalPlanNode) -> str:
        """Decide which template family a logical-plan node belongs to."""
        name = node.name.lower()
        parameters = node.parameters
        if name.startswith("fused_") or "sub_specs" in parameters:
            return "fused_scores"
        if name.startswith("select_"):
            return "select_columns"
        if "join_text" in name:
            return "join_text"
        if "join_image" in name or "join_scene" in name:
            return "join_images"
        if name == "join_results" or name.startswith("join_"):
            return "join_results"
        if name.startswith("gen_recency"):
            return "recency_score"
        if name.startswith("gen_") and parameters.get("concept"):
            return "semantic_score"
        if name.startswith("combine"):
            return "combine_scores"
        if name.startswith("classify_"):
            return "classify_image"
        if name.startswith("filter_") and "flag_column" in parameters:
            return "flag_filter"
        if name.startswith("filter_") and "threshold" in parameters:
            return "score_filter"
        if name.startswith("filter_") and "op" in parameters:
            return "relational_filter"
        if name.startswith("rank"):
            return "rank"
        if name.startswith("project"):
            return "project_result"
        raise FunctionGenerationError(f"cannot classify node {node.name!r} into a template family")

    def candidates(self, family: str) -> List[ImplementationSpec]:
        """Candidate implementations of one family, most accurate first."""
        specs = self._builders.get(family)
        if not specs:
            raise FunctionGenerationError(f"no implementations registered for family {family!r}")
        return sorted(specs, key=lambda s: -s.accuracy_prior)

    def candidates_for_node(self, node: LogicalPlanNode) -> List[ImplementationSpec]:
        """Candidate implementations for one logical-plan node."""
        return self.candidates(self.classify_node(node))

    # -- registration of all template families ------------------------------------------
    def _register(self, spec: ImplementationSpec) -> None:
        self._builders.setdefault(spec.family, []).append(spec)

    def _register_all(self) -> None:
        self._register(ImplementationSpec(
            "select_columns", "projection", "sql", 0.99, 0.0, self._build_select_columns,
            "Project the requested columns from the base relation."))
        self._register(ImplementationSpec(
            "join_text", "entity_collection_join", "python", 0.95, 0.0, self._build_join_text,
            "Join movies to their plot documents and collect extracted entities per movie."))
        self._register(ImplementationSpec(
            "join_images", "scene_collection_join", "python", 0.95, 0.0, self._build_join_images,
            "Join movies to their posters' scene-graph objects and pixel statistics."))
        self._register(ImplementationSpec(
            "semantic_score", "embedding_similarity", "embedding", 0.92, 6.0,
            self._build_semantic_score_embedding,
            "Embed the keyword list and extracted entities; score by match density.",
            batchable=True, batch_setup_tokens=5.0))
        self._register(ImplementationSpec(
            "semantic_score", "keyword_overlap", "python", 0.85, 0.0,
            self._build_semantic_score_keyword,
            "Score by exact keyword overlap between the keyword list and extracted entities."))
        self._register(ImplementationSpec(
            "recency_score", "minmax_normalization", "python", 0.98, 0.0, self._build_recency_score,
            "Normalize release year to [0, 1] over the input table."))
        self._register(ImplementationSpec(
            "combine_scores", "weighted_sum", "python", 0.99, 0.0, self._build_combine_scores,
            "Weighted sum of the individual score columns."))
        self._register(ImplementationSpec(
            "classify_image", "scene_statistics", "python", 0.9, 0.0,
            self._build_classify_image_scene,
            "Classify posters from their scene-graph objects and pixel statistics."))
        self._register(ImplementationSpec(
            "classify_image", "vlm_query", "vlm", 0.96, 440.0,
            self._build_classify_image_vlm,
            "Ask the VLM a visual question about every poster.",
            batchable=True, batch_setup_tokens=384.0))
        self._register(ImplementationSpec(
            "classify_image", "cascade", "cascade", 0.94, 60.0,
            self._build_classify_image_cascade,
            "Cheap scene-statistics classifier first; escalate uncertain posters to the VLM.",
            batchable=True, batch_setup_tokens=50.0))
        self._register(ImplementationSpec(
            "flag_filter", "boolean_filter", "python", 0.99, 0.0, self._build_flag_filter,
            "Keep rows whose classification flag matches."))
        self._register(ImplementationSpec(
            "score_filter", "threshold_filter", "python", 0.95, 0.0, self._build_score_filter,
            "Keep rows whose score clears a threshold."))
        self._register(ImplementationSpec(
            "relational_filter", "comparison_filter", "sql", 0.99, 0.0,
            self._build_relational_filter,
            "Keep rows satisfying a relational comparison."))
        self._register(ImplementationSpec(
            "join_results", "hash_join", "sql", 0.98, 0.0, self._build_join_results,
            "Equi-join two intermediate tables on the movie id."))
        self._register(ImplementationSpec(
            "rank", "sort_descending", "sql", 0.99, 0.0, self._build_rank,
            "Sort by the requested score column."))
        self._register(ImplementationSpec(
            "project_result", "identity", "python", 0.99, 0.0, self._build_project_result,
            "Return the remaining rows unchanged."))
        self._register(ImplementationSpec(
            "fused_scores", "monolithic", "embedding", 0.8, 6.0, self._build_fused_scores,
            "One large function computing every score and their combination in a single pass. "
            "Cheaper to materialize but harder to generate and explain (paper Section 4).",
            batchable=True, batch_setup_tokens=5.0))

    # ------------------------------------------------------------------------------
    # Template builders.  Each returns (body, source_text).
    # ------------------------------------------------------------------------------
    def _build_select_columns(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        columns = list(node.parameters.get("columns") or ["movie_id", "title", "year"])
        source_table = node.inputs[0]

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            available = [c for c in columns if source.schema.has_column(c)]
            return ops.project(source, available, name=node.output)

        source_text = (
            f"def {node.name}({source_table}):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return {source_table}.select(columns={columns})\n"
        )
        return body, source_text

    def _build_join_text(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            films = _primary_input(node, inputs)
            plots = inputs.get("film_plot") or context.catalog.table("film_plot")
            entities = inputs.get("text_entities") or context.catalog.table("text_entities")
            did_by_movie = {row["movie_id"]: row["did"] for row in plots}
            entities_by_did = _rows_by_key(entities, "did")
            # The join constructs fresh rows (it does not carry per-row lineage
            # ids forward), so its output is a table-level artifact -- exactly
            # the paper's treatment of join_text_scene_graph in Figure 2.
            film_columns = [c for c in films.schema.columns if c.name.lower() != "lid"]
            schema = Schema(list(film_columns)) \
                .add(Column("plot_did", DataType.INTEGER)) \
                .add(Column("entity_terms", DataType.JSON)) \
                .add(Column("person_entities", DataType.JSON))
            result = Table(node.output, schema)
            for row in films:
                did = did_by_movie.get(row.get("movie_id"))
                doc_entities = entities_by_did.get(did, [])
                events = [e.get("canonical") for e in doc_entities if e.get("cid") == "event"]
                persons = [e.get("canonical") for e in doc_entities if e.get("cid") == "person"]
                new_row = {c.name: row.get(c.name) for c in film_columns}
                new_row.update({"plot_did": did, "entity_terms": events,
                                "person_entities": persons})
                result.insert(new_row)
            return result

        source_text = (
            f"def {node.name}(films, film_plot, text_entities):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            "    did_by_movie = {r['movie_id']: r['did'] for r in film_plot}\n"
            "    for row in films:\n"
            "        doc = entities_of(text_entities, did_by_movie[row['movie_id']])\n"
            "        row['entity_terms'] = [e.canonical for e in doc if e.cid == 'event']\n"
            "        row['person_entities'] = [e.canonical for e in doc if e.cid == 'person']\n"
            "    return films\n"
        )
        return body, source_text

    def _build_join_images(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            films = _primary_input(node, inputs)
            posters = inputs.get("poster_images") or context.catalog.table("poster_images")
            objects = inputs.get("image_objects") or context.catalog.table("image_objects")
            frames = inputs.get("image_frames") or context.catalog.table("image_frames")
            uri_by_movie = {row["movie_id"]: row.get("image_uri") for row in posters}
            objects_by_vid = _rows_by_key(objects, "vid")
            frames_by_vid = {row["vid"]: row for row in frames}
            # Fresh rows without per-row lineage ids: this join is a
            # table-level artifact in the provenance graph.
            film_columns = [c for c in films.schema.columns if c.name.lower() != "lid"]
            schema = Schema(list(film_columns)) \
                .add(Column("image_uri", DataType.TEXT)) \
                .add(Column("object_classes", DataType.JSON)) \
                .add(Column("n_objects", DataType.INTEGER)) \
                .add(Column("saturation", DataType.FLOAT)) \
                .add(Column("color_variance", DataType.FLOAT)) \
                .add(Column("coverage", DataType.FLOAT))
            result = Table(node.output, schema)
            for row in films:
                movie_id = row.get("movie_id")
                movie_objects = objects_by_vid.get(movie_id, [])
                frame = frames_by_vid.get(movie_id, {})
                new_row = {c.name: row.get(c.name) for c in film_columns}
                new_row.update({
                    "image_uri": uri_by_movie.get(movie_id),
                    "object_classes": [o.get("cid") for o in movie_objects],
                    "n_objects": len(movie_objects),
                    "saturation": frame.get("saturation", 0.0),
                    "color_variance": frame.get("color_variance", 0.0),
                    "coverage": frame.get("coverage", 0.0),
                })
                result.insert(new_row)
            return result

        source_text = (
            f"def {node.name}(films, poster_images, image_objects, image_frames):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            "    for row in films:\n"
            "        objs = objects_of(image_objects, vid=row['movie_id'])\n"
            "        row['object_classes'] = [o.cid for o in objs]\n"
            "        row['n_objects'] = len(objs)\n"
            "        row['saturation'], row['color_variance'], row['coverage'] = \\\n"
            "            frame_stats(image_frames, vid=row['movie_id'])\n"
            "    return films\n"
        )
        return body, source_text

    def _build_semantic_score_embedding(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        score_column = node.parameters.get("score_column", "semantic_score")
        keywords = list(node.parameters.get("keywords") or [])

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            embeddings = context.models.embeddings
            node_keywords = list(context.parameters.get("keywords") or keywords)
            chunk = _batch_size(context)

            if chunk > 1 and hasattr(embeddings, "match_fraction_batch"):
                # Vectorized: one column of per-row term lists, one batched
                # match-density call per chunk.  Bit-identical to the serial
                # path (deterministic embeddings), sub-linear token cost.
                rows = list(source)
                scores: List[float] = []
                for start, stop in _chunks(len(rows), chunk):
                    scores.extend(embeddings.match_fraction_batch(
                        node_keywords,
                        [row.get("entity_terms") or [] for row in rows[start:stop]],
                        purpose=node.name))
                computed = [{score_column: round(float(score), 6)}
                            for score in scores]
                return _extend_table_rows(source, node.output,
                                          [(score_column, DataType.FLOAT)], computed)

            def compute(row: Dict[str, Any]) -> Dict[str, Any]:
                terms = row.get("entity_terms") or []
                score = embeddings.match_fraction(node_keywords, terms,
                                                  purpose=node.name)
                return {score_column: round(float(score), 6)}

            return _extend_table(source, node.output, [(score_column, DataType.FLOAT)], compute)

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    keywords = {keywords}\n"
            "    for row in films:\n"
            "        sims = [max(cosine(embed(k), embed(t)) for k in keywords)\n"
            "                for t in row['entity_terms']]\n"
            f"        row['{score_column}'] = matching_density(sims)\n"
            "    return films\n"
        )
        return body, source_text

    def _build_semantic_score_keyword(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        score_column = node.parameters.get("score_column", "semantic_score")
        keywords = list(node.parameters.get("keywords") or [])

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            node_keywords = {k.lower() for k in (context.parameters.get("keywords") or keywords)}

            # Whole-column: one pass over the entity-terms vector, no row
            # proxies on the hot path.
            scores: List[Any] = []
            for raw_terms in _safe_vector(source, "entity_terms"):
                terms = [str(t).lower() for t in (raw_terms or [])]
                if not terms:
                    scores.append(0.0)
                    continue
                hits = sum(1 for term in terms if term in node_keywords)
                scores.append(round(hits / len(terms), 6))
            return _extend_table_columns(source, node.output,
                                         [(score_column, DataType.FLOAT)],
                                         {score_column: scores})

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description} (keyword-overlap variant)\"\"\"\n"
            f"    keywords = {keywords}\n"
            "    for row in films:\n"
            "        terms = row['entity_terms']\n"
            f"        row['{score_column}'] = len([t for t in terms if t in keywords]) / len(terms)\n"
            "    return films\n"
        )
        return body, source_text

    def _build_recency_score(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        year_column = node.parameters.get("year_column", "year")
        score_column = node.parameters.get("score_column", "recency_score")
        reverse = bool(node.parameters.get("_inject_reversed", False))

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            # Whole-column: min/max and the normalization are vector math over
            # the shared year vector; no row proxies are materialized.
            year_vector = _safe_vector(source, year_column)
            years = [y for y in year_vector if y is not None]
            low, high = (min(years), max(years)) if years else (0, 1)
            span = max(1, high - low)
            scores: List[Any] = []
            for year in year_vector:
                if year is None:
                    scores.append(None)
                    continue
                normalized = (year - low) / span
                if reverse:
                    normalized = 1.0 - normalized
                scores.append(round(float(normalized), 6))
            return _extend_table_columns(source, node.output,
                                         [(score_column, DataType.FLOAT)],
                                         {score_column: scores})

        direction = "older films score higher (BUG)" if reverse else "newer films score higher"
        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description} ({direction})\"\"\"\n"
            f"    low, high = min(year), max(year)\n"
            f"    for row in films:\n"
            + (f"        row['{score_column}'] = 1.0 - (row['{year_column}'] - low) / (high - low)\n"
               if reverse else
               f"        row['{score_column}'] = (row['{year_column}'] - low) / (high - low)\n")
            + "    return films\n"
        )
        return body, source_text

    def _build_combine_scores(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        weights = dict(node.parameters.get("weights") or {})
        output_column = node.parameters.get("output_column", "final_score")

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            node_weights = dict(context.parameters.get("weights") or weights)
            if not node_weights:
                candidates = [c.name for c in source.schema if c.name.endswith("_score")]
                node_weights = {name: 1.0 / len(candidates) for name in candidates} if candidates else {}

            # Whole-column weighted sum: one accumulator vector, one pass per
            # score column, reading the shared vectors directly.
            totals = [0.0] * len(source)
            for column, weight in node_weights.items():
                for i, value in enumerate(_safe_vector(source, column)):
                    if value is not None:
                        totals[i] += weight * float(value)
            combined = [round(total, 8) for total in totals]
            return _extend_table_columns(source, node.output,
                                         [(output_column, DataType.FLOAT)],
                                         {output_column: combined})

        terms = " + ".join(f"{w} * row['{c}']" for c, w in weights.items()) or "sum of score columns"
        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            "    for row in films:\n"
            f"        row['{output_column}'] = {terms}\n"
            "    return films\n"
        )
        return body, source_text

    def _build_classify_image_scene(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        flag_column = node.parameters.get("flag_column", "boring_poster")
        score_column = flag_column.replace("_poster", "") + "_score"
        fragile = bool(node.parameters.get("_inject_fragile", False))

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            lexicon = context.models.lexicon

            def compute(row: Dict[str, Any]) -> Dict[str, Any]:
                if fragile and row.get("image_uri", "").endswith(".heic"):
                    raise ValueError(f"unsupported image format: {row.get('image_uri')}")
                classes = [str(c) for c in (row.get("object_classes") or [])]
                vivid_hits = lexicon.matching_terms(" ".join(classes), "vivid_visual")
                score = 1.0
                score -= min(0.4, 0.1 * int(row.get("n_objects") or 0))
                score -= min(0.3, 0.15 * len(vivid_hits))
                score -= min(0.3, float(row.get("saturation") or 0.0))
                score = max(0.0, min(1.0, score))
                return {score_column: round(score, 6), flag_column: score >= 0.5}

            return _extend_table(source, node.output,
                                 [(score_column, DataType.FLOAT), (flag_column, DataType.BOOLEAN)],
                                 compute)

        source_text = (
            f"def {node.name}(films_with_image_scene):\n"
            f"    \"\"\"{node.description} (scene-statistics variant)\"\"\"\n"
            "    for row in films_with_image_scene:\n"
            "        vivid = [c for c in row['object_classes'] if c in VIVID_CLASSES]\n"
            "        score = 1.0 - 0.1 * row['n_objects'] - 0.15 * len(vivid) - row['saturation']\n"
            f"        row['{score_column}'] = clamp(score, 0, 1)\n"
            f"        row['{flag_column}'] = row['{score_column}'] >= 0.5\n"
            "    return films_with_image_scene\n"
        )
        return body, source_text

    def _build_classify_image_vlm(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        flag_column = node.parameters.get("flag_column", "boring_poster")
        score_column = flag_column.replace("_poster", "") + "_score"
        concept = node.parameters.get("concept", "boring_visual")
        question = "Is this poster boring and plain?" if "boring" in concept else \
            "Is this poster vivid and action-packed?"

        def outcome(answer: Dict[str, Any]) -> Dict[str, Any]:
            score = answer["boring_score"] if "boring" in concept else 1.0 - answer["boring_score"]
            return {score_column: round(float(score), 6), flag_column: bool(answer["answer"])}

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            posters = context.catalog.table("poster_images")
            image_by_movie = {row["movie_id"]: row.get("image") for row in posters}
            vlm = context.models.vlm
            chunk = _batch_size(context)

            if chunk > 1 and hasattr(vlm, "answer_visual_question_batch"):
                # Vectorized: one batched visual-question call per chunk of
                # rows that have a poster; rows without one keep the serial
                # path's NULL outcome.
                rows = list(source)
                computed: List[Dict[str, Any]] = [
                    {score_column: None, flag_column: None} for _ in rows]
                with_image = [i for i, row in enumerate(rows)
                              if image_by_movie.get(row.get("movie_id")) is not None]
                for start, stop in _chunks(len(with_image), chunk):
                    indexes = with_image[start:stop]
                    answers = vlm.answer_visual_question_batch(
                        [image_by_movie[rows[i].get("movie_id")] for i in indexes],
                        question, purpose=node.name)
                    for i, answer in zip(indexes, answers):
                        computed[i] = outcome(answer)
                return _extend_table_rows(
                    source, node.output,
                    [(score_column, DataType.FLOAT), (flag_column, DataType.BOOLEAN)],
                    computed)

            def compute(row: Dict[str, Any]) -> Dict[str, Any]:
                image = image_by_movie.get(row.get("movie_id"))
                if image is None:
                    return {score_column: None, flag_column: None}
                answer = vlm.answer_visual_question(image, question, purpose=node.name)
                return outcome(answer)

            return _extend_table(source, node.output,
                                 [(score_column, DataType.FLOAT), (flag_column, DataType.BOOLEAN)],
                                 compute)

        source_text = (
            f"def {node.name}(films_with_image_scene):\n"
            f"    \"\"\"{node.description} (VLM-query variant)\"\"\"\n"
            "    for row in films_with_image_scene:\n"
            "        image = load_image(poster_images, row['movie_id'])\n"
            f"        answer = vlm.ask(image, {question!r})\n"
            f"        row['{score_column}'] = answer.score\n"
            f"        row['{flag_column}'] = answer.answer\n"
            "    return films_with_image_scene\n"
        )
        return body, source_text

    def _build_classify_image_cascade(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        """A model cascade: scene statistics first, VLM only for uncertain posters.

        This is the paper's "model cascades" physical choice: most posters are
        decided by the cheap classifier; only those whose cheap score sits near
        the decision boundary pay for a VLM call.
        """
        flag_column = node.parameters.get("flag_column", "boring_poster")
        score_column = flag_column.replace("_poster", "") + "_score"
        concept = node.parameters.get("concept", "boring_visual")
        threshold = float(node.parameters.get("cascade_confidence", 0.6))
        question = "Is this poster boring and plain?" if "boring" in concept else \
            "Is this poster vivid and action-packed?"

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            from repro.models.cascade import CascadeStage, ModelCascade

            source = _primary_input(node, inputs)
            lexicon = context.models.lexicon
            vlm = context.models.vlm
            posters = context.catalog.table("poster_images") \
                if context.catalog.has_table("poster_images") else None
            image_by_movie = {row["movie_id"]: row.get("image") for row in posters} \
                if posters is not None else {}

            def cheap_stage(row: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
                classes = [str(c) for c in (row.get("object_classes") or [])]
                vivid_hits = lexicon.matching_terms(" ".join(classes), "vivid_visual")
                score = 1.0
                score -= min(0.4, 0.1 * int(row.get("n_objects") or 0))
                score -= min(0.3, 0.15 * len(vivid_hits))
                score -= min(0.3, float(row.get("saturation") or 0.0))
                score = max(0.0, min(1.0, score))
                confidence = min(1.0, abs(score - 0.5) * 2)
                return {score_column: round(score, 6), flag_column: score >= 0.5}, confidence

            def expensive_stage(row: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
                image = image_by_movie.get(row.get("movie_id"))
                if image is None:
                    return cheap_stage(row)[0], 1.0
                answer = vlm.answer_visual_question(image, question, purpose=node.name)
                score = answer["boring_score"] if "boring" in concept else 1.0 - answer["boring_score"]
                return ({score_column: round(float(score), 6), flag_column: bool(answer["answer"])},
                        max(answer["confidence"], 0.99))

            chunk = _batch_size(context)
            if chunk > 1 and hasattr(vlm, "answer_visual_question_batch"):
                # Vectorized cascade: the cheap stage is model-free, so it
                # runs over every row first; only the uncertain rows (cheap
                # confidence below the threshold) escalate, and their VLM
                # queries go out as one batched call per chunk.  Decisions
                # are identical to ModelCascade.run row by row.
                rows = list(source)
                computed: List[Dict[str, Any]] = []
                escalated: List[int] = []
                for i, row in enumerate(rows):
                    prediction, confidence = cheap_stage(row)
                    computed.append(dict(prediction))
                    if confidence < threshold:
                        escalated.append(i)
                pending = [i for i in escalated
                           if image_by_movie.get(rows[i].get("movie_id")) is not None]
                # Escalated rows without a poster keep the cheap answer —
                # exactly expensive_stage's missing-image fallback.
                for start, stop in _chunks(len(pending), chunk):
                    indexes = pending[start:stop]
                    answers = vlm.answer_visual_question_batch(
                        [image_by_movie[rows[i].get("movie_id")] for i in indexes],
                        question, purpose=node.name)
                    for i, answer in zip(indexes, answers):
                        score = answer["boring_score"] if "boring" in concept \
                            else 1.0 - answer["boring_score"]
                        computed[i] = {score_column: round(float(score), 6),
                                       flag_column: bool(answer["answer"])}
                return _extend_table_rows(
                    source, node.output,
                    [(score_column, DataType.FLOAT), (flag_column, DataType.BOOLEAN)],
                    computed)

            cascade = ModelCascade([
                CascadeStage("scene_statistics", cheap_stage, threshold=threshold),
                CascadeStage("vlm_query", expensive_stage, threshold=0.0),
            ])

            def compute(row: Dict[str, Any]) -> Dict[str, Any]:
                decision = cascade.run(row)
                return dict(decision.prediction)

            return _extend_table(source, node.output,
                                 [(score_column, DataType.FLOAT), (flag_column, DataType.BOOLEAN)],
                                 compute)

        source_text = (
            f"def {node.name}(films_with_image_scene):\n"
            f"    \"\"\"{node.description} (cascade variant)\"\"\"\n"
            "    for row in films_with_image_scene:\n"
            "        score, confidence = cheap_scene_classifier(row)\n"
            f"        if confidence < {threshold}:\n"
            f"            score = vlm.ask(load_image(row), {question!r})\n"
            f"        row['{score_column}'], row['{flag_column}'] = score, score >= 0.5\n"
            "    return films_with_image_scene\n"
        )
        return body, source_text

    def _build_flag_filter(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        flag_column = node.parameters.get("flag_column", "boring_poster")
        keep_if_true = bool(node.parameters.get("keep_if_true", True))

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            return _filter_table_column(source, node.output, flag_column,
                                        lambda value: bool(value) == keep_if_true)

        comparison = "is True" if keep_if_true else "is False"
        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return [row for row in films if row['{flag_column}'] {comparison}]\n"
        )
        return body, source_text

    def _build_score_filter(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        score_column = node.parameters.get("score_column", "score")
        threshold = float(node.parameters.get("threshold", 0.5))

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            return _filter_table_column(source, node.output, score_column,
                                        lambda value: (value or 0.0) >= threshold)

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return [row for row in films if row['{score_column}'] >= {threshold}]\n"
        )
        return body, source_text

    def _build_relational_filter(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        column = node.parameters.get("column", "year")
        op = node.parameters.get("op", ">")
        value = node.parameters.get("value")

        comparators = {
            ">": lambda a, b: a is not None and a > b,
            ">=": lambda a, b: a is not None and a >= b,
            "<": lambda a, b: a is not None and a < b,
            "<=": lambda a, b: a is not None and a <= b,
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
        }
        if op not in comparators:
            raise FunctionGenerationError(f"unsupported relational operator {op!r}")
        comparator = comparators[op]

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            return _filter_table_column(source, node.output, column,
                                        lambda cell: comparator(cell, value))

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return [row for row in films if row['{column}'] {op} {value!r}]\n"
        )
        return body, source_text

    def _build_join_results(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        join_key = node.parameters.get("join_key", "movie_id")

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            if len(node.inputs) < 2:
                raise FunctionGenerationError(f"{node.name!r} needs two inputs to join")
            left = inputs[node.inputs[0]]
            right = inputs[node.inputs[1]]
            joined = ops.hash_join(left, right, join_key, join_key, how="inner", name=node.output)
            # Drop the duplicated join columns from the right side to keep the
            # result tidy (title_right, year_right, ...).
            keep = [c for c in joined.column_names() if not c.endswith("_right")]
            return ops.project(joined, keep, name=node.output)

        source_text = (
            f"def {node.name}({', '.join(node.inputs)}):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return hash_join({node.inputs[0]}, {node.inputs[1]}, on='{join_key}')\n"
        )
        return body, source_text

    def _build_rank(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        sort_column = node.parameters.get("sort_column", "final_score")
        descending = bool(node.parameters.get("descending", True))

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            column = sort_column if source.schema.has_column(sort_column) else None
            if column is None:
                score_like = [c.name for c in source.schema if c.name.endswith("_score")]
                if not score_like:
                    raise FunctionGenerationError(
                        f"{node.name!r} cannot find a score column to sort by in "
                        f"{source.column_names()}")
                column = score_like[-1]
            return ops.sort(source, [(column, descending)], name=node.output)

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    return sorted(films, key=lambda row: row['{sort_column}'], reverse={descending})\n"
        )
        return body, source_text

    def _build_project_result(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            return source.copy(node.output)

        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            "    return films\n"
        )
        return body, source_text

    def _build_fused_scores(self, node: LogicalPlanNode) -> Tuple[FunctionBody, str]:
        sub_specs = list(node.parameters.get("sub_specs") or [])
        if not sub_specs:
            raise FunctionGenerationError(f"fused node {node.name!r} has no sub_specs")

        def body(inputs: Dict[str, Table], context: FunctionContext) -> Table:
            source = _primary_input(node, inputs)
            embeddings = context.models.embeddings
            length = len(source)
            year_vector = _safe_vector(source, "year")
            years = [y for y in year_vector if y is not None]
            low, high = (min(years), max(years)) if years else (0, 1)
            span = max(1, high - low)
            chunk = _batch_size(context)

            new_columns: List[Tuple[str, DataType]] = []
            for spec in sub_specs:
                parameters = spec.get("parameters", {})
                column = parameters.get("score_column") or parameters.get("output_column")
                if column:
                    new_columns.append((column, DataType.FLOAT))

            # Whole-column fusion: each sub-spec produces one score vector; a
            # later spec (combine) reads the vectors produced before it, then
            # falls back to the source columns -- same visibility the per-row
            # ``merged`` dict used to provide.
            computed_vectors: Dict[str, List[Any]] = {}

            def _column_of(name: str) -> List[Any]:
                if name in computed_vectors:
                    return computed_vectors[name]
                return _safe_vector(source, name)

            for spec in sub_specs:
                parameters = spec.get("parameters", {})
                name = spec.get("name", "")
                if name.startswith("gen_recency"):
                    column = parameters.get("score_column", "recency_score")
                    spec_years = _column_of(parameters.get("year_column", "year"))
                    values: List[Any] = [
                        None if year is None else round((year - low) / span, 6)
                        for year in spec_years]
                elif name.startswith("gen_"):
                    column = parameters.get("score_column", "semantic_score")
                    keywords = list(parameters.get("keywords") or [])
                    term_lists = [terms or [] for terms in _column_of("entity_terms")]
                    if chunk > 1 and hasattr(embeddings, "match_fraction_batch"):
                        # Batched match-density calls over the whole column
                        # (the PR-4 funnel): bit-identical scores, sub-linear
                        # token cost versus one call per row.
                        scores: List[float] = []
                        for start, stop in _chunks(length, chunk):
                            scores.extend(embeddings.match_fraction_batch(
                                keywords, term_lists[start:stop], purpose=node.name))
                        values = [round(float(score), 6) for score in scores]
                    else:
                        values = [round(float(embeddings.match_fraction(
                            keywords, terms, purpose=node.name)), 6)
                            for terms in term_lists]
                elif name.startswith("combine"):
                    column = parameters.get("output_column", "final_score")
                    weights = dict(parameters.get("weights") or {})
                    totals = [0.0] * length
                    for weighted_column, weight in weights.items():
                        for i, value in enumerate(_column_of(weighted_column)):
                            totals[i] += weight * float(value or 0.0)
                    values = [round(total, 8) for total in totals]
                else:
                    continue
                computed_vectors[column] = values

            return _extend_table_columns(source, node.output, new_columns,
                                         computed_vectors)

        steps = ", ".join(spec.get("name", "?") for spec in sub_specs)
        source_text = (
            f"def {node.name}(films):\n"
            f"    \"\"\"{node.description}\"\"\"\n"
            f"    # fused steps: {steps}\n"
            "    for row in films:\n"
            "        # all scores and their combination are computed inline in one pass\n"
            "        ...\n"
            "    return films\n"
        )
        return body, source_text

"""Generated functions: the physical half of an FAO.

A :class:`GeneratedFunction` binds a signature to one concrete implementation:
a Python callable over input tables, a rendered source text (what gets
persisted to disk and shown in explanations), an implementation kind/variant,
a version id, and the dependency pattern used for lineage recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.datamodel.lineage import DependencyPattern
from repro.errors import FunctionExecutionError, QueryCancelledError
from repro.fao.signature import FunctionSignature
from repro.models.base import ModelSuite
from repro.relational.catalog import Catalog
from repro.relational.table import Table


@dataclass
class FunctionContext:
    """Everything a function body may touch while executing.

    The callable receives its input tables explicitly; the context provides
    the model suite (for implementations that call the VLM / embeddings), the
    catalog (for SQL-style implementations), and the node parameters the coder
    baked in (keyword lists, weights, thresholds, join keys).

    ``batch_size`` is the executor's vectorization hint: batchable bodies
    collect their per-row model inputs into chunks of at most this many rows
    and issue one batched call per chunk.  ``0``/``1`` (the default — also
    what profiling and ad-hoc execution use) means row-at-a-time.  Results
    are bit-identical either way; only the token bill changes.
    """

    models: ModelSuite
    catalog: Catalog
    parameters: Dict[str, Any] = field(default_factory=dict)
    batch_size: int = 0


#: A function body: ``(inputs by table name, context) -> output table``.
FunctionBody = Callable[[Dict[str, Table], FunctionContext], Table]


@dataclass
class GeneratedFunction:
    """One versioned implementation of a function signature."""

    signature: FunctionSignature
    body: FunctionBody
    source_text: str
    version: int = 1
    implementation_kind: str = "python"
    variant: str = "default"
    dependency_pattern: DependencyPattern = DependencyPattern.ONE_TO_ONE
    parameters: Dict[str, Any] = field(default_factory=dict)
    accuracy_prior: float = 0.9
    cost_per_row_tokens: float = 0.0
    profile_runtime_s: Optional[float] = None
    # Vectorization: whether the body honours ``FunctionContext.batch_size``
    # by issuing batched model calls, and the per-call setup tokens the batch
    # then pays once per chunk instead of once per row (the optimizer's
    # batch-aware cost formula uses both).
    batchable: bool = False
    batch_setup_tokens: float = 0.0

    @property
    def name(self) -> str:
        return self.signature.name

    @property
    def func_id(self) -> str:
        """The identifier recorded in lineage entries."""
        return self.signature.name

    def execute(self, inputs: Dict[str, Table], context: FunctionContext) -> Table:
        """Run the implementation.

        Any exception raised by the body is wrapped in
        :class:`FunctionExecutionError` (a *syntactic* fault in the paper's
        terminology) so the execution monitor can catch and repair it without
        special-casing arbitrary exception types.
        """
        merged_context = FunctionContext(
            models=context.models,
            catalog=context.catalog,
            parameters={**self.parameters, **context.parameters},
            batch_size=context.batch_size,
        )
        try:
            result = self.body(inputs, merged_context)
        except (FunctionExecutionError, QueryCancelledError):
            # Cancellation unwinds the query; it must not look like a
            # syntactic fault or the monitor would "repair" cancelled work.
            raise
        except Exception as error:  # noqa: BLE001 - deliberate: any body fault is syntactic
            raise FunctionExecutionError(
                f"function {self.name!r} (v{self.version}) failed: {error}",
                function_name=self.name, cause=error) from error
        if not isinstance(result, Table):
            raise FunctionExecutionError(
                f"function {self.name!r} (v{self.version}) returned "
                f"{type(result).__name__} instead of a Table", function_name=self.name)
        result.name = self.signature.output or result.name
        return result

    def describe(self) -> str:
        return (f"{self.signature.describe()}  "
                f"[v{self.version}, {self.implementation_kind}/{self.variant}, "
                f"{self.dependency_pattern.value}]")

    def metadata(self) -> Dict[str, Any]:
        """Serializable metadata (persisted next to the source text)."""
        return {
            "name": self.name,
            "version": self.version,
            "signature": self.signature.to_dict(),
            "implementation_kind": self.implementation_kind,
            "variant": self.variant,
            "dependency_pattern": self.dependency_pattern.value,
            "parameters": {k: v for k, v in self.parameters.items() if _is_plain(v)},
            "accuracy_prior": self.accuracy_prior,
            "cost_per_row_tokens": self.cost_per_row_tokens,
            "batchable": self.batchable,
            "batch_setup_tokens": self.batch_setup_tokens,
        }


def _is_plain(value: Any) -> bool:
    """Whether a parameter value is JSON-serializable as-is."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_plain(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_plain(v) for k, v in value.items())
    return False

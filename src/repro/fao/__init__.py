"""Function-as-operator (FAO) -- the paper's Section 4.

Every logical-plan node is compiled into a *function*: a signature (name,
description, inputs, output) plus one or more generated *implementations*,
each stamped with a monotonically increasing version id.  Implementations are
produced by the coder agent from a library of templates, profiled on sample
rows by the profiler agent, and checked by the critic agent; the registry
persists every version to disk so lineage queries and roll-backs can refer to
them later.
"""

from repro.fao.signature import FunctionSignature
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.registry import FunctionRegistry
from repro.fao.library import ImplementationLibrary, ImplementationSpec
from repro.fao.codegen import Coder
from repro.fao.profiler import Profiler, ProfileResult
from repro.fao.critic import Critic, CriticVerdict

__all__ = [
    "FunctionSignature",
    "FunctionContext",
    "GeneratedFunction",
    "FunctionRegistry",
    "ImplementationLibrary",
    "ImplementationSpec",
    "Coder",
    "Profiler",
    "ProfileResult",
    "Critic",
    "CriticVerdict",
]

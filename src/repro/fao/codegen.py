"""The coder agent: turns logical-plan nodes into executable functions.

Given a node's signature, its parameters, and sample rows from its input
relations, the coder selects an implementation template from the library,
parameterizes it, and emits a :class:`GeneratedFunction`.  It can:

* produce *alternative implementations* of the same signature (the optimizer
  asks for several variants and picks by cost/accuracy);
* apply a *repair hint* from the critic or the execution monitor and emit a
  patched implementation (which the registry stamps with a new version);
* *inject faults* on request -- a reversed recency score (the paper's semantic
  anomaly example) or a fragile implementation that chokes on an unsupported
  image format (the paper's syntactic fault example) -- so tests, examples,
  and benchmarks can exercise the repair loops deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.datamodel.lineage import DependencyPattern
from repro.errors import FunctionGenerationError
from repro.fao.function import GeneratedFunction
from repro.fao.library import ImplementationLibrary, ImplementationSpec
from repro.fao.signature import FunctionSignature
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlanNode

# Fault kinds understood by ``fault_injection``.
FAULT_SEMANTIC_REVERSED = "semantic_reversed"
FAULT_SYNTACTIC_FRAGILE = "syntactic_fragile"


class Coder:
    """Generates function bodies for logical-plan nodes."""

    def __init__(self, models: ModelSuite, library: Optional[ImplementationLibrary] = None,
                 fault_injection: Optional[Dict[str, str]] = None):
        self.models = models
        self.library = library or ImplementationLibrary()
        self.fault_injection = dict(fault_injection or {})

    # -- public API -----------------------------------------------------------------
    def candidate_variants(self, node: LogicalPlanNode) -> List[ImplementationSpec]:
        """The implementation variants available for a node."""
        return self.library.candidates_for_node(node)

    def generate(self, node: LogicalPlanNode, variant: Optional[str] = None,
                 hint: Optional[str] = None,
                 input_samples: Optional[Dict[str, List[dict]]] = None) -> GeneratedFunction:
        """Generate one implementation of a node.

        Parameters
        ----------
        node:
            The logical-plan node (signature + parameters).
        variant:
            Specific template variant to use; the most accurate variant is used
            when omitted.
        hint:
            A corrective hint from the critic or the execution monitor.  The
            coder folds the hint into the implementation: it removes injected
            faults the hint describes and documents the patch in the source.
        input_samples:
            Sample rows of the input relations (catalog context for the coder,
            charged as prompt tokens).
        """
        specs = self.candidate_variants(node)
        spec = specs[0]
        if variant is not None:
            matching = [s for s in specs if s.variant == variant]
            if not matching:
                raise FunctionGenerationError(
                    f"no variant {variant!r} for node {node.name!r} "
                    f"(available: {[s.variant for s in specs]})")
            spec = matching[0]

        parameters = dict(node.parameters)
        fault = self.fault_injection.get(node.name)
        patched_notes: List[str] = []

        if fault == FAULT_SEMANTIC_REVERSED and spec.family == "recency_score":
            parameters["_inject_reversed"] = True
        if fault == FAULT_SYNTACTIC_FRAGILE and spec.family == "classify_image":
            parameters["_inject_fragile"] = True

        if hint:
            lowered = hint.lower()
            if "revers" in lowered or "decreas" in lowered:
                parameters.pop("_inject_reversed", None)
                self.fault_injection.pop(node.name, None)
                patched_notes.append(f"patched: {hint}")
            if "format" in lowered or "unsupported" in lowered or "convert" in lowered:
                parameters.pop("_inject_fragile", None)
                self.fault_injection.pop(node.name, None)
                patched_notes.append(f"patched: added format conversion ({hint})")
            if not patched_notes:
                patched_notes.append(f"patched: {hint}")

        build_node = dataclasses.replace(node, parameters=parameters)
        body, source_text = spec.build(build_node)
        if patched_notes:
            source_text += "".join(f"# {note}\n" for note in patched_notes)

        dependency = DependencyPattern.from_string(node.dependency_pattern)
        function = GeneratedFunction(
            signature=FunctionSignature.from_node(node),
            body=body,
            source_text=source_text,
            implementation_kind=spec.implementation_kind,
            variant=spec.variant,
            dependency_pattern=dependency,
            parameters=parameters,
            accuracy_prior=spec.accuracy_prior,
            cost_per_row_tokens=spec.cost_per_row_tokens,
            batchable=spec.batchable,
            batch_setup_tokens=spec.batch_setup_tokens,
        )

        # Charge code-generation tokens: the prompt is the node spec plus the
        # sampled rows; the completion is the emitted source.
        prompt = node.description + repr(node.parameters) + repr(input_samples or {})
        self.models.llm.render_text(
            "generated {name} ({variant})", purpose="code_generation",
            name=node.name, variant=spec.variant)
        self.models.cost_meter.record(
            self.models.llm.name, "code_generation_body",
            prompt_tokens=max(1, len(prompt) // 4),
            completion_tokens=max(1, len(source_text) // 4))
        return function

    def repair(self, node: LogicalPlanNode, failed: GeneratedFunction, hint: str,
               input_samples: Optional[Dict[str, List[dict]]] = None) -> GeneratedFunction:
        """Generate a patched implementation after a failure.

        The rewriter keeps the same variant as the failed implementation so the
        patch is minimal, mirroring the paper's reviewer/rewriter loop.
        """
        return self.generate(node, variant=failed.variant, hint=hint,
                             input_samples=input_samples)

"""Function signatures: the logical half of an FAO."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.parser.logical_plan import LogicalPlanNode


@dataclass(frozen=True)
class FunctionSignature:
    """The declaration of a function: what it reads, produces, and means.

    A signature is the *logical operator*; its generated implementations (one
    per version) are the *physical operators* the optimizer chooses among.
    """

    name: str
    description: str
    inputs: tuple
    output: str

    @classmethod
    def from_node(cls, node: LogicalPlanNode) -> "FunctionSignature":
        """Build a signature from a logical-plan node."""
        return cls(name=node.name, description=node.description,
                   inputs=tuple(node.inputs), output=node.output)

    def to_dict(self) -> Dict[str, Any]:
        """The paper's Figure 3 JSON layout."""
        return {
            "name": self.name,
            "description": self.description,
            "inputs": list(self.inputs),
            "output": self.output,
        }

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.inputs)}) -> {self.output}"

"""The function registry: versioned storage of generated functions.

The paper requires that "each function is assigned an identifier and a version
tag ... these functions are persisted locally on disk", enabling precise
lineage queries, safe roll-backs, and iterative refinement.  The registry
keeps every version in memory and mirrors each one through a *source sink* —
a skill-store backend whose ``put_source`` writes the source file plus a
metadata JSON.  The legacy ``workspace`` knob is a compatibility shim: when
only a workspace directory is given, a file backend is mounted there, so
there is exactly one persistence path for generated code.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.errors import FunctionGenerationError
from repro.fao.function import GeneratedFunction

if TYPE_CHECKING:  # pragma: no cover - skills imports fao, so defer at runtime
    from repro.skills.backends import SkillBackend


class FunctionRegistry:
    """Stores generated functions by name and version."""

    def __init__(self, workspace: Optional[Union[str, Path]] = None,
                 source_sink: Optional["SkillBackend"] = None):
        self._versions: Dict[str, List[GeneratedFunction]] = {}
        self.workspace = Path(workspace) if workspace else None
        # The registry is shared by every session of a service; registration
        # must stay atomic when concurrent queries repair functions.
        self._lock = threading.Lock()
        if source_sink is None and self.workspace is not None:
            from repro.skills.backends import FileBackend
            source_sink = FileBackend(self.workspace)
        self.source_sink = source_sink

    # -- registration -------------------------------------------------------------
    def register(self, function: GeneratedFunction) -> GeneratedFunction:
        """Register a new implementation, assigning the next version id.

        The function's ``version`` attribute is overwritten with the assigned
        version (existing versions are never modified or removed).
        """
        with self._lock:
            versions = self._versions.setdefault(function.name, [])
            function.version = len(versions) + 1
            versions.append(function)
        if self.source_sink is not None:
            self.source_sink.put_source(function)
        return function

    # -- lookup ----------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered function names."""
        return sorted(self._versions)

    def versions(self, name: str) -> List[GeneratedFunction]:
        """All versions of one function (oldest first)."""
        return list(self._versions.get(name, []))

    def latest(self, name: str) -> GeneratedFunction:
        """The most recent version of one function."""
        versions = self._versions.get(name)
        if not versions:
            raise FunctionGenerationError(f"no generated function named {name!r}")
        return versions[-1]

    def get(self, name: str, version: int) -> GeneratedFunction:
        """A specific version of one function."""
        for function in self._versions.get(name, []):
            if function.version == version:
                return function
        raise FunctionGenerationError(f"no version {version} of function {name!r}")

    def has(self, name: str) -> bool:
        """Whether any version of ``name`` exists."""
        return bool(self._versions.get(name))

    def version_count(self, name: str) -> int:
        """How many versions of ``name`` exist (0 if unknown)."""
        return len(self._versions.get(name, []))

    def total_functions(self) -> int:
        """Number of distinct function names."""
        return len(self._versions)

    def total_versions(self) -> int:
        """Number of implementations across all names."""
        return sum(len(v) for v in self._versions.values())

    def rollback(self, name: str) -> GeneratedFunction:
        """Return the previous version of a function (the roll-back target).

        Does not delete anything: versions are immutable.  Raises when there is
        no earlier version to roll back to.
        """
        versions = self._versions.get(name, [])
        if len(versions) < 2:
            raise FunctionGenerationError(f"function {name!r} has no earlier version to roll back to")
        return versions[-2]

    def describe(self) -> str:
        """One line per function with its version count and latest variant."""
        lines = ["function registry"]
        for name in self.names():
            latest = self.latest(name)
            lines.append(f"  {name:<28} versions={self.version_count(name)} "
                         f"latest={latest.implementation_kind}/{latest.variant}")
        return "\n".join(lines)

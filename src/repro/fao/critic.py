"""The critic agent: judges whether an implementation is semantically right.

The critic inspects the function source, the sampled input records, the
produced output records, and the node description, and decides whether the
results plausibly satisfy the intended semantics (paper Section 4, "Ensuring
function semantic correctness").  When a mismatch is detected it returns a
corrective hint; the coder iterates until the output is acceptable (or the
repair budget runs out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.fao.codegen import Coder
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.profiler import Profiler, ProfileResult
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlanNode


@dataclass
class CriticVerdict:
    """The critic's judgement of one profiled implementation."""

    ok: bool
    hint: str = ""
    checked_semantics: bool = False

    def describe(self) -> str:
        if self.ok:
            return "critic: accepted"
        return f"critic: rejected -- {self.hint}"


class Critic:
    """Checks executability and semantic plausibility of generated functions."""

    def __init__(self, models: ModelSuite):
        self.models = models

    def review(self, function: GeneratedFunction, profile: ProfileResult,
               node: LogicalPlanNode) -> CriticVerdict:
        """Review one implementation given its profiling results."""
        if not profile.success:
            return CriticVerdict(ok=False, hint=profile.error or "the function raised an exception")
        ok, hint = self.models.llm.judge_output(
            node.description, profile.input_sample, profile.output_sample,
            purpose="critic_semantic_check")
        return CriticVerdict(ok=ok, hint=hint, checked_semantics=True)

    def review_and_repair(self, node: LogicalPlanNode, function: GeneratedFunction,
                          inputs, context: FunctionContext, coder: Coder,
                          profiler: Profiler, registry=None, max_rounds: int = 3
                          ) -> Tuple[GeneratedFunction, ProfileResult, int, CriticVerdict]:
        """Run the profile -> review -> repair loop until acceptance.

        Returns the accepted (or last attempted) function, its profile, the
        number of repair rounds used, and the final verdict.  New versions are
        registered in ``registry`` when one is provided.
        """
        current = function
        profile = profiler.profile(current, inputs, context)
        rounds = 0
        verdict = self.review(current, profile, node)
        while not verdict.ok and rounds < max_rounds:
            rounds += 1
            current = coder.repair(node, current, verdict.hint,
                                   input_samples={name: table.head(2)
                                                  for name, table in inputs.items()})
            if registry is not None:
                registry.register(current)
            profile = profiler.profile(current, inputs, context)
            verdict = self.review(current, profile, node)
        return current, profile, rounds, verdict

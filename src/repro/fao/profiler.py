"""The profiler agent: executes freshly generated functions on sample rows.

The profiler checks that an implementation actually runs, measures its
runtime, and counts the tokens its model calls consumed, so the optimizer can
attach cost statistics to each implementation (paper Section 4, "Ensuring
function executability").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FunctionExecutionError
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.models.base import ModelSuite
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.utils.timer import Timer


@dataclass
class ProfileResult:
    """What the profiler observed for one implementation."""

    function_name: str
    variant: str
    success: bool
    runtime_s: float = 0.0
    tokens_used: int = 0
    rows_in: int = 0
    rows_out: int = 0
    error: Optional[str] = None
    input_sample: List[Dict[str, Any]] = field(default_factory=list)
    output_sample: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def tokens_per_row(self) -> float:
        """Measured model tokens per input row (0 when nothing ran)."""
        if self.rows_in == 0:
            return float(self.tokens_used)
        return self.tokens_used / self.rows_in

    def describe(self) -> str:
        status = "ok" if self.success else f"FAILED ({self.error})"
        return (f"profile {self.function_name}/{self.variant}: {status}, "
                f"{self.rows_in}->{self.rows_out} rows, {self.runtime_s * 1000:.2f} ms, "
                f"{self.tokens_used} tokens")


class Profiler:
    """Runs implementations on truncated sample inputs and records statistics."""

    def __init__(self, models: ModelSuite, sample_size: int = 3):
        self.models = models
        self.sample_size = sample_size

    def profile(self, function: GeneratedFunction, inputs: Dict[str, Table],
                context: FunctionContext, sample_size: Optional[int] = None) -> ProfileResult:
        """Execute ``function`` on a sample of its primary input.

        The primary (first) input is truncated to ``sample_size`` rows; side
        inputs (lookup relations) are passed whole because the implementations
        use them as dictionaries.
        """
        size = sample_size or self.sample_size
        primary_name = function.signature.inputs[0] if function.signature.inputs else None
        sampled_inputs: Dict[str, Table] = {}
        for name, table in inputs.items():
            if name == primary_name and len(table) > size:
                sampled_inputs[name] = table.head_table(size)
            else:
                sampled_inputs[name] = table

        rows_in = len(sampled_inputs.get(primary_name, Table("empty", Schema([])))) \
            if primary_name else 0
        marker = self.models.cost_meter.snapshot()
        result = ProfileResult(function_name=function.name, variant=function.variant,
                               success=False, rows_in=rows_in)
        if primary_name and primary_name in sampled_inputs:
            result.input_sample = sampled_inputs[primary_name].head(size)

        timer = Timer()
        try:
            with timer:
                output = function.execute(sampled_inputs, context)
        except FunctionExecutionError as error:
            result.runtime_s = timer.elapsed
            result.error = str(error)
            result.tokens_used = self.models.cost_meter.tokens_since(marker)
            return result

        result.success = True
        result.runtime_s = timer.elapsed
        result.rows_out = len(output)
        result.output_sample = output.head(size)
        result.tokens_used = self.models.cost_meter.tokens_since(marker)
        function.profile_runtime_s = result.runtime_s
        return result

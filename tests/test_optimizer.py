"""Unit tests for the optimizer: cost model, rewrites, physical planning."""

import pytest

from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.datamodel.lineage import LineageStore
from repro.datamodel.views import ViewPopulator
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel
from repro.interaction.user import ScriptedUser, SilentUser
from repro.models.base import ModelSuite
from repro.optimizer.cost_model import CostModel
from repro.optimizer.optimizer import QueryOptimizer
from repro.optimizer.rewrites import applied_rewrites, fuse_score_chain, predicate_pushdown
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.parser.nl_parser import NLParser
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.relational.catalog import Catalog


@pytest.fixture(scope="module")
def opt_env(corpus):
    """A populated catalog plus the flagship logical plan (module-scoped)."""
    models = ModelSuite.create(seed=11)
    catalog = Catalog()
    ViewPopulator(models, catalog, LineageStore()).load_corpus(corpus)
    channel = InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                              [FLAGSHIP_CORRECTION]))
    outcome = NLParser(models).parse(FLAGSHIP_QUERY, channel)
    plan = LogicalPlanGenerator(models, catalog).generate(outcome.sketch, outcome.intent)
    return models, catalog, outcome, plan


def _year_filter_plan(models, catalog):
    """A small plan whose relational filter sits late (pushdown candidate)."""
    channel = InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}))
    outcome = NLParser(models).parse(
        "List films released after 2000 whose plots are exciting.", channel)
    return LogicalPlanGenerator(models, catalog).generate(outcome.sketch, outcome.intent)


class TestCostModel:
    def test_base_table_cardinality_from_catalog(self, opt_env):
        _, catalog, _, _ = opt_env
        model = CostModel(catalog)
        assert model.table_cardinality("movie_table") == 20
        assert model.table_cardinality("unknown_table") == 0

    def test_filter_selectivity_propagation(self, opt_env):
        _, catalog, _, _ = opt_env
        model = CostModel(catalog)
        node = LogicalPlanNode(name="filter_year_0", description="", inputs=["movie_table"],
                               output="filtered", parameters={"op": ">", "column": "year",
                                                              "value": 2000})
        rows = model.estimate_output_cardinality(node, 20)
        assert 1 <= rows < 20
        assert model.table_cardinality("filtered") == 0  # not recorded until estimate()

    def test_estimate_uses_template_and_profile_costs(self, opt_env):
        models, catalog, _, plan = opt_env
        from repro.fao.codegen import Coder
        model = CostModel(catalog)
        node = plan.node("gen_excitement_score")
        expensive = Coder(models).generate(node, variant="embedding_similarity")
        cheap = Coder(models).generate(node, variant="keyword_overlap")
        node_input = plan.node("join_text_entities")
        model.record_output_cardinality(node_input.output, 20)
        assert model.estimate(node, expensive).tokens > model.estimate(node, cheap).tokens

    def test_estimate_plan_tokens_smaller_with_pushdown(self, opt_env):
        models, catalog, _, _ = opt_env
        plan = _year_filter_plan(models, catalog)
        pushed, changed = predicate_pushdown(plan, catalog)
        assert changed
        per_row = {node.name: (6.0 if node.name.startswith("gen_") else 0.1)
                   for node in plan.nodes}
        original = CostModel(catalog).estimate_plan_tokens(plan, per_row)
        optimized = CostModel(catalog).estimate_plan_tokens(pushed, per_row)
        assert optimized < original


class TestRewrites:
    def test_applied_rewrites_names(self):
        assert applied_rewrites(True, True) == ["predicate_pushdown", "operator_fusion"]
        assert applied_rewrites(False, False) == []

    def test_predicate_pushdown_moves_filter_to_source(self, opt_env):
        models, catalog, _, _ = opt_env
        plan = _year_filter_plan(models, catalog)
        filter_nodes = [n for n in plan.nodes if "op" in n.parameters]
        assert filter_nodes, "expected a relational filter in the plan"
        original_input = filter_nodes[0].inputs[0]
        assert original_input != "films_base"

        pushed, changed = predicate_pushdown(plan, catalog)
        assert changed
        moved = [n for n in pushed.nodes if "op" in n.parameters][0]
        assert moved.inputs == ["films_base"]
        # The plan is still structurally valid and the original is untouched.
        assert pushed.validate(catalog.table_names()) == []
        assert [n for n in plan.nodes if "op" in n.parameters][0].inputs[0] == original_input

    def test_predicate_pushdown_noop_without_filters(self, opt_env):
        _, catalog, _, plan = opt_env
        flagship_filters = [n for n in plan.nodes if "op" in n.parameters]
        assert not flagship_filters
        _, changed = predicate_pushdown(plan, catalog)
        assert not changed

    def test_fuse_score_chain(self, opt_env):
        _, catalog, _, plan = opt_env
        fused, changed = fuse_score_chain(plan)
        assert changed
        assert len(fused) < len(plan)
        fused_nodes = [n for n in fused.nodes if n.name.startswith("fused_")]
        assert len(fused_nodes) == 1
        sub_names = [s["name"] for s in fused_nodes[0].parameters["sub_specs"]]
        assert "gen_excitement_score" in sub_names and "combine_scores" in sub_names
        assert fused.validate(catalog.table_names()) == []

    def test_fuse_noop_on_short_chain(self, opt_env):
        models, catalog, _, _ = opt_env
        channel = InteractionChannel(SilentUser())
        outcome = NLParser(models).parse("Which films have a boring poster?", channel)
        plan = LogicalPlanGenerator(models, catalog).generate(outcome.sketch, outcome.intent)
        _, changed = fuse_score_chain(plan)
        assert not changed


class TestQueryOptimizer:
    def test_flagship_physical_plan_choices(self, opt_env):
        models, catalog, _, plan = opt_env
        optimizer = QueryOptimizer(models, catalog, FunctionRegistry())
        physical, report = optimizer.optimize(plan)
        assert len(physical) == len(plan)
        variants = report.chosen_variants
        assert variants["gen_excitement_score"] == "embedding_similarity"
        assert variants["classify_boring"] == "scene_statistics"
        assert report.candidates_evaluated >= len(plan)
        assert physical.total_estimated_tokens > 0
        assert 0.0 < physical.estimated_accuracy <= 1.0
        assert "physical plan" in physical.describe()

    def test_variant_override_forces_expensive_classifier(self, opt_env):
        models, catalog, _, plan = opt_env
        optimizer = QueryOptimizer(models, catalog, FunctionRegistry(),
                                   variant_overrides={"classify_boring": "vlm_query"},
                                   explore_variants=False)
        physical, report = optimizer.optimize(plan)
        assert report.chosen_variants["classify_boring"] == "vlm_query"
        assert physical.operator("classify_boring").estimated_tokens > 0

    def test_fusion_reduces_operator_count(self, opt_env):
        models, catalog, _, plan = opt_env
        fused_opt = QueryOptimizer(models, catalog, FunctionRegistry(), enable_fusion=True,
                                   explore_variants=False)
        physical, report = fused_opt.optimize(plan)
        assert "operator_fusion" in report.rewrites_applied
        assert len(physical) < len(plan)

    def test_registry_accumulates_versions(self, opt_env):
        models, catalog, _, plan = opt_env
        registry = FunctionRegistry()
        QueryOptimizer(models, catalog, registry, explore_variants=True).optimize(plan)
        assert registry.total_functions() == len(plan)
        assert registry.version_count("gen_excitement_score") >= 2  # both variants generated

    def test_parallel_codegen_matches_sequential_choices(self, opt_env):
        models, catalog, _, plan = opt_env
        sequential, seq_report = QueryOptimizer(models, catalog, FunctionRegistry(),
                                                explore_variants=False).optimize(plan)
        parallel, par_report = QueryOptimizer(models, catalog, FunctionRegistry(),
                                              explore_variants=False, parallel=True).optimize(plan)
        assert seq_report.chosen_variants == par_report.chosen_variants
        assert [op.name for op in sequential] == [op.name for op in parallel]

    def test_optimizer_report_describe(self, opt_env):
        models, catalog, _, plan = opt_env
        _, report = QueryOptimizer(models, catalog, FunctionRegistry(),
                                   explore_variants=False).optimize(plan)
        text = report.describe()
        assert "candidates evaluated" in text and "rewrites" in text

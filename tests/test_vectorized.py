"""Tests for vectorized execution: the gateway batch client, the batched FAO
bodies and view populators, windowed gateway stats, selective corpus-reload
invalidation, and the ``Table.rows`` mutation guard.

The vectorization contract is *bit-identical rows at a sub-linear token
bill*: every test here either pins element-wise equivalence between the
serial and the batched path, or pins the accounting (partial cache hits,
per-session reconciliation, batch stats).
"""

import time

import pytest

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.datamodel.lineage import LineageStore
from repro.datamodel.scene_graph import populate_scene_graph
from repro.datamodel.text_graph import populate_text_graph
from repro.errors import SessionQuotaExceededError
from repro.fao.codegen import Coder
from repro.fao.function import FunctionContext
from repro.gateway.gateway import GatewayConfig, ModelGateway
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.catalog import Catalog
from repro.relational.indexes import HashIndex
from repro.relational.table import Table

KEYWORDS = ["gun", "fight", "attack", "explosion"]


def make_node(name, inputs, output, **params):
    return LogicalPlanNode(name=name, description=name, inputs=inputs,
                           output=output, dependency_pattern="one_to_one",
                           parameters=params)


@pytest.fixture(scope="module")
def vec_corpus():
    return build_movie_corpus(size=12, seed=7)


@pytest.fixture(scope="module")
def vec_tables(vec_corpus):
    return vec_corpus.to_tables()


@pytest.fixture()
def vec_catalog(vec_tables):
    catalog = Catalog()
    catalog.register(vec_tables["poster_images"], kind="base")
    return catalog


def films_for_classify(vec_tables):
    """Rows with scene stats spanning confident and uncertain cheap scores."""
    poster_ids = [row["movie_id"] for row in vec_tables["poster_images"]][:6]
    shapes = [
        # (n_objects, object_classes, saturation): mixes confident cheap
        # decisions with uncertain ones that escalate to the VLM.
        (0, [], 0.0),
        (3, ["person"], 0.05),
        (5, ["explosion", "gun", "fire"], 0.8),
        (2, ["person", "suit"], 0.1),
        (4, ["car", "crowd"], 0.3),
        (1, ["tree"], 0.02),
    ]
    rows = [{"movie_id": movie_id, "n_objects": n, "object_classes": classes,
             "saturation": saturation}
            for movie_id, (n, classes, saturation) in zip(poster_ids, shapes)]
    # One row without a poster: both variants must keep their serial
    # missing-image behaviour (NULL outcome / cheap fallback).
    rows.append({"movie_id": 999999, "n_objects": 3, "object_classes": [],
                 "saturation": 0.1})
    return Table.from_rows("films_with_image_scene", rows)


def films_for_scoring():
    terms = [["gun", "murder", "chase"], [], ["garden", "tea"],
             ["explosion", "fight", "attack", "war"], ["dinner"],
             ["gun", "murder", "chase"]]  # a duplicate row, deduped in-batch
    return Table.from_rows("films_with_text_entities", [
        {"movie_id": i, "entity_terms": t} for i, t in enumerate(terms)])


def run_variant(variant, batch_size, models, catalog, table, family_node):
    function = Coder(models).generate(family_node, variant=variant)
    context = FunctionContext(models=models, catalog=catalog,
                              batch_size=batch_size)
    output = function.execute({family_node.inputs[0]: table}, context)
    return [dict(row) for row in output]


class TestBodyEquivalence:
    """Element-wise vectorized-vs-serial equivalence per rewritten body."""

    def test_embedding_match_density(self, vec_catalog):
        models = ModelSuite.create(seed=7)
        node = make_node("gen_excitement_score", ["films_with_text_entities"],
                         "scored", keywords=KEYWORDS, concept="excitement",
                         score_column="excitement_score")
        serial = run_variant("embedding_similarity", 0, models, vec_catalog,
                             films_for_scoring(), node)
        batched = run_variant("embedding_similarity", 4, models, vec_catalog,
                              films_for_scoring(), node)
        assert serial == batched
        assert any(row["excitement_score"] > 0 for row in serial)

    def test_vlm_classify(self, vec_tables, vec_catalog):
        models = ModelSuite.create(seed=7)
        node = make_node("classify_boring", ["films_with_image_scene"],
                         "flagged", flag_column="boring_poster",
                         concept="boring_visual")
        films = films_for_classify(vec_tables)
        serial = run_variant("vlm_query", 0, models, vec_catalog, films, node)
        batched = run_variant("vlm_query", 3, models, vec_catalog, films, node)
        assert serial == batched
        # The posterless row keeps its NULL outcome.
        assert serial[-1]["boring_poster"] is None

    def test_cascade(self, vec_tables, vec_catalog):
        models = ModelSuite.create(seed=7)
        node = make_node("classify_boring", ["films_with_image_scene"],
                         "flagged", flag_column="boring_poster",
                         concept="boring_visual")
        films = films_for_classify(vec_tables)
        serial = run_variant("cascade", 0, models, vec_catalog, films, node)
        meter_marker = len(models.cost_meter.calls)
        batched = run_variant("cascade", 3, models, vec_catalog, films, node)
        assert serial == batched
        # The cascade only escalates uncertain rows; the batched pass must
        # not have queried the VLM for every row.
        vlm_calls = [c for c in models.cost_meter.calls[meter_marker:]
                     if c.model.startswith("vlm")]
        assert 0 < sum(getattr(c, "batch_size", 1) for c in vlm_calls) < len(serial)

    def test_bodies_batch_through_a_routed_suite(self, vec_catalog):
        """The gateway path returns the same rows and fills the shared cache."""
        models = ModelSuite.create(seed=7)
        gateway = ModelGateway(GatewayConfig())
        routed = models.fork().routed(gateway, "s1")
        node = make_node("gen_excitement_score", ["films_with_text_entities"],
                         "scored", keywords=KEYWORDS, concept="excitement",
                         score_column="excitement_score")
        serial = run_variant("embedding_similarity", 0, models, vec_catalog,
                             films_for_scoring(), node)
        batched = run_variant("embedding_similarity", 4, routed, vec_catalog,
                              films_for_scoring(), node)
        assert serial == batched
        stats = gateway.flat_stats()
        assert stats["batches"] >= 1
        assert stats["cache_entries"] > 0


class TestPopulatorEquivalence:
    def test_scene_graph_rows_and_lineage_match(self, vec_tables):
        posters = vec_tables["poster_images"]
        serial_models = ModelSuite.create(seed=7)
        batched_models = ModelSuite.create(seed=7)
        serial = populate_scene_graph(posters.rows, serial_models.vlm,
                                      lineage=LineageStore(), parent_lid=1,
                                      batch_size=1)
        batched = populate_scene_graph(posters.rows, batched_models.vlm,
                                       lineage=LineageStore(), parent_lid=1,
                                       batch_size=5)
        for name, table in serial.as_dict().items():
            assert [dict(r) for r in table] == \
                [dict(r) for r in batched.as_dict()[name]], name
        # Sub-linear bill: the batched arm paid strictly less for the same rows.
        assert batched_models.cost_meter.total_tokens < \
            serial_models.cost_meter.total_tokens
        assert batched_models.cost_meter.batch_tokens_saved > 0

    def test_text_graph_rows_and_lineage_match(self, vec_tables):
        plots = vec_tables["film_plot"]
        serial_models = ModelSuite.create(seed=7)
        batched_models = ModelSuite.create(seed=7)
        serial = populate_text_graph(plots.rows, serial_models.ner,
                                     lineage=LineageStore(), parent_lid=1,
                                     batch_size=1)
        batched = populate_text_graph(plots.rows, batched_models.ner,
                                      lineage=LineageStore(), parent_lid=1,
                                      batch_size=4)
        for name, table in serial.as_dict().items():
            assert [dict(r) for r in table] == \
                [dict(r) for r in batched.as_dict()[name]], name
        assert batched_models.cost_meter.total_tokens < \
            serial_models.cost_meter.total_tokens


class TestGatewayBatchClient:
    def _routed(self, **config):
        models = ModelSuite.create(seed=7)
        gateway = ModelGateway(GatewayConfig(**config))
        return gateway, models.fork().routed(gateway, "s1")

    def test_partial_hits_batch_only_the_misses(self):
        gateway, routed = self._routed()
        client = routed.gateway_client
        lists = [["war", "battle"], ["picnic", "tea"], ["gun", "chase"],
                 ["calm", "beach"]]
        # Warm two members through the *serial* proxy path: serial and batch
        # traffic must share fingerprints, so these become batch hits.
        routed.embeddings.match_fraction(KEYWORDS, lists[0])
        routed.embeddings.match_fraction(KEYWORDS, lists[2])
        warm = client.counters.snapshot()

        scores = routed.embeddings.match_fraction_batch(KEYWORDS, lists)
        delta = client.counters.delta(warm)
        assert delta["hits"] == 2
        assert delta["misses"] == 2          # only the misses executed
        assert delta["batch_calls"] == 1     # ... as one batched invocation
        assert client.counters.batch_sizes[-1] == 2
        assert delta["tokens_saved"] > 0

        # Every member (hit or computed) is now cached: a re-issue of the
        # full vector answers entirely from the cache and charges nothing.
        rerun_marker = client.counters.snapshot()
        rerun = routed.embeddings.match_fraction_batch(KEYWORDS, lists)
        rerun_delta = client.counters.delta(rerun_marker)
        assert rerun == scores
        assert rerun_delta["hits"] == len(lists)
        assert rerun_delta["misses"] == 0
        assert rerun_delta["tokens_charged"] == 0

    def test_per_session_accounting_reconciles(self):
        gateway, routed = self._routed()
        client = routed.gateway_client
        routed.embeddings.match_fraction(KEYWORDS, ["war", "battle"])
        routed.embeddings.match_fraction_batch(
            KEYWORDS, [["war", "battle"], ["picnic"], ["gun", "chase"]])
        counters = client.counters
        # What the gateway charged the session == its admission ledger ==
        # what actually landed on the session's own meter.
        assert counters.tokens_charged == gateway.admission.spent("s1")
        assert counters.tokens_charged == routed.cost_meter.total_tokens
        # And the discount is auditable on the meter's batched records.
        assert routed.cost_meter.batch_tokens_saved == counters.batch_tokens_saved

    def test_duplicate_members_share_one_computation(self):
        gateway, routed = self._routed()
        scores = routed.embeddings.match_fraction_batch(
            KEYWORDS, [["war", "battle"]] * 5)
        assert len(set(scores)) == 1
        assert gateway.flat_stats()["cache_entries"] == 1

    def test_duplicates_across_chunk_boundaries_execute_once(self):
        # 5 distinct members + a duplicate of the first at the far end,
        # chunk size 4: the duplicate must ride its representative's chunk
        # (in-batch dedup), not re-execute in a later one.
        gateway, routed = self._routed(max_batch=4)
        lists = [[f"term{i}", "battle"] for i in range(5)] + [["term0", "battle"]]
        scores = routed.embeddings.match_fraction_batch(KEYWORDS, lists)
        assert scores[0] == scores[-1]
        counters = routed.gateway_client.counters
        assert counters.batch_calls == 2
        # 6 logical misses but only 5 distinct executions' worth of charge:
        # the duplicate shared its representative's computation.
        assert counters.misses == 6
        assert gateway.flat_stats()["cache_entries"] == 5

    def test_semantic_tier_stays_live_for_vectors(self):
        # With the near-match tier enabled, the batch client consults it
        # per member (tests/test_semantic_ann.py covers the multi-member
        # composition; this single-member vector takes the serial funnel).
        gateway, routed = self._routed(enable_semantic=True,
                                       semantic_threshold=0.95)
        routed.embeddings.match_fraction_batch(KEYWORDS, [["war", "battle"]])
        marker = routed.gateway_client.counters.snapshot()
        # A near-identical (not byte-identical) candidate list: the exact
        # cache misses, the semantic tier answers.
        routed.embeddings.match_fraction_batch(KEYWORDS,
                                               [["war", "battle", "battle"]])
        delta = routed.gateway_client.counters.delta(marker)
        assert delta["semantic_hits"] == 1
        assert delta["batch_calls"] == 0

    def test_batching_disabled_falls_back_to_serial_funnel(self):
        gateway, routed = self._routed(enable_batching=False)
        client = routed.gateway_client
        scores = routed.embeddings.match_fraction_batch(
            KEYWORDS, [["war", "battle"], ["picnic"]])
        assert len(scores) == 2
        assert client.counters.batch_calls == 0
        assert client.counters.misses == 2

    def test_quota_refuses_batches_beyond_the_budget(self):
        gateway, routed = self._routed(session_token_quota=1)
        routed.embeddings.match_fraction_batch(KEYWORDS, [["war", "battle"]] * 2)
        with pytest.raises(SessionQuotaExceededError):
            routed.embeddings.match_fraction_batch(KEYWORDS, [["picnic"], ["beach"]])

    def test_concurrent_identical_batches_coalesce(self):
        """Batch members publish into the in-flight table: with the cache
        off, two sessions issuing the same vector execute each member once
        service-wide — one side leads each member, the other coalesces."""
        import threading

        class SlowModel:
            """Sleeps per call so both batches overlap deterministically."""
            name = "stub:slow-batch"
            BATCH_OVERHEAD_TOKENS = 4

            def __init__(self, meter):
                self.cost_meter = meter

            def ask(self, prompt, purpose="ask"):
                time.sleep(0.05)
                if self.cost_meter is not None:
                    self.cost_meter.record(self.name, purpose,
                                           prompt_tokens=10, completion_tokens=0)
                return {"echo": prompt}

        from repro.gateway.vectorized import GatewayBatchClient
        from repro.models.cost import CostMeter

        gateway = ModelGateway(GatewayConfig(enable_cache=False))
        calls = [((f"prompt-{i}",), {}) for i in range(6)]
        barrier = threading.Barrier(2)
        outputs = {}

        def run(session_id):
            model = SlowModel(CostMeter())
            batch_client = GatewayBatchClient(gateway.client(session_id))
            barrier.wait()
            outputs[session_id] = batch_client.invoke(model, "ask", calls)

        threads = [threading.Thread(target=run, args=(sid,))
                   for sid in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outputs["a"] == outputs["b"]
        counters = [gateway.client(sid).counters for sid in ("a", "b")]
        # Each member executed exactly once service-wide: the six
        # leaderships split between the sessions, the rest coalesced.
        assert sum(c.misses for c in counters) == len(calls)
        assert sum(c.coalesced for c in counters) == len(calls)
        assert sum(c.tokens_charged for c in counters) > 0
        assert gateway.coalescer.stats.coalesced == len(calls)


class TestWindowedStats:
    def test_window_counts_recent_traffic_only(self):
        gateway, routed = ModelGateway(GatewayConfig()), None
        models = ModelSuite.create(seed=7)
        routed = models.fork().routed(gateway, "s1")
        routed.embeddings.match_fraction(KEYWORDS, ["war", "battle"])
        routed.embeddings.match_fraction(KEYWORDS, ["war", "battle"])  # hit
        windowed = gateway.windowed_stats(60.0)
        assert windowed["requests"] == 2
        assert windowed["misses"] == 1
        assert windowed["hits"] == 1
        assert windowed["tokens_charged"] > 0
        assert windowed["tokens_saved"] > 0
        time.sleep(0.05)
        assert gateway.windowed_stats(0.01)["requests"] == 0

    def test_service_surface(self, vec_corpus):
        service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                             explore_variants=False))
        service.load_corpus(vec_corpus)
        stats = service.gateway_stats(window_s=300.0)
        assert stats["windowed"]["requests"] > 0
        assert "requests_per_s" in stats["windowed"]
        # The plain call keeps its historical flat shape.
        assert "windowed" not in service.gateway_stats()
        service.shutdown()


class TestCorpusReloadInvalidation:
    def test_text_keyed_entries_survive_reload(self, vec_corpus):
        service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                             explore_variants=False))
        service.load_corpus(vec_corpus)
        first_load = service.total_tokens()
        hits_before = service.gateway.flat_stats()["cache_hits"]

        service.load_corpus(vec_corpus)
        reload_tokens = service.total_tokens() - first_load
        hits_after = service.gateway.flat_stats()["cache_hits"]
        # Text-keyed extraction results survived: the reload answered the
        # NER pass from the cache (hits) and re-paid only the URI-keyed
        # (image) side, so it cost a fraction of the first load.
        assert hits_after > hits_before
        assert 0 < reload_tokens < first_load * 0.6
        service.shutdown()

    def test_uri_keyed_entries_are_dropped(self):
        gateway = ModelGateway(GatewayConfig())
        models = ModelSuite.create(seed=7)
        routed = models.fork().routed(gateway, "s1")
        image = build_movie_corpus(size=3, seed=7).movies[0].poster
        routed.vlm.extract_scene_graph(image)              # URI-keyed
        routed.ner.extract("John fights the fire.")        # text-keyed
        assert gateway.flat_stats()["cache_entries"] == 2
        dropped = gateway.clear(volatile_only=True)
        assert dropped == 1
        # The text-keyed entry still answers; the URI-keyed one re-executes.
        marker = routed.gateway_client.counters.snapshot()
        routed.ner.extract("John fights the fire.")
        assert routed.gateway_client.counters.delta(marker)["hits"] == 1


class TestRowsMutationGuard:
    def test_appends_stay_suffix_indexable(self):
        table = Table.from_rows("t", [{"k": 1}, {"k": 2}])
        index = HashIndex(table, "k")
        version = table.non_append_version
        table.rows.append({"k": 3})
        assert table.non_append_version == version  # append-only contract
        assert index.lookup_one(3) == {"k": 3}

    def test_structural_mutation_bumps_and_rebuilds(self):
        table = Table.from_rows("t", [{"k": 1}, {"k": 2}])
        index = HashIndex(table, "k")
        assert index.lookup_one(1) == {"k": 1}
        table.rows[0] = {"k": 9}            # bypasses validation, not tracking
        assert index.lookup_one(9) == {"k": 9}
        assert index.lookup_one(1) is None
        del table.rows[0]
        assert index.lookup_one(9) is None
        table.rows.sort(key=lambda r: -r["k"])
        assert index.lookup_one(2) == {"k": 2}

    def test_wholesale_replacement_bumps(self):
        table = Table.from_rows("t", [{"k": 1}])
        index = HashIndex(table, "k")
        table.rows = [{"k": 7}, {"k": 8}]
        assert index.lookup_one(7) == {"k": 7}
        assert index.lookup_one(1) is None

    def test_reads_behave_like_the_raw_list(self):
        table = Table.from_rows("t", [{"k": 1}, {"k": 2}, {"k": 3}])
        assert table.rows[0] == {"k": 1}
        assert table.rows[:2] == [{"k": 1}, {"k": 2}]
        assert list(table.rows) == [{"k": 1}, {"k": 2}, {"k": 3}]
        assert len(table.rows) == 3
        assert table.rows == [{"k": 1}, {"k": 2}, {"k": 3}]


class TestEndToEndEquivalence:
    """A full service query is row-identical vectorized vs serial."""

    def test_flagship_rows_match(self, vec_corpus):
        def run(vectorized):
            service = KathDBService(KathDBConfig(
                seed=7, monitor_enabled=False, explore_variants=False,
                enable_model_cache=False, enable_request_coalescing=False,
                enable_vectorized_execution=vectorized))
            service.load_corpus(vec_corpus)
            response = service.session().query(QueryRequest(
                nl_query="Rank every film by how exciting its plot is.",
                user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION})))
            assert response.ok, response.error
            rows = [dict(r) for r in response.result.final_table]
            tokens = service.total_tokens() + response.total_tokens
            record = next(r for r in response.result.records
                          if r.operator_name == "gen_excitement_score")
            service.shutdown()
            return rows, tokens, record

        serial_rows, serial_tokens, serial_record = run(False)
        vector_rows, vector_tokens, vector_record = run(True)
        assert serial_rows == vector_rows
        assert vector_tokens < serial_tokens
        # The vectorized run surfaces its batched invocations per operator.
        assert vector_record.batch_calls >= 1
        assert sum(vector_record.batch_sizes) == vector_record.rows_in
        assert serial_record.batch_calls == 0

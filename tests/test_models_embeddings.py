"""Unit tests for the lexicon-grounded embedding model."""

import numpy as np
import pytest

from repro.models.cost import CostMeter
from repro.models.embeddings import EmbeddingModel, cosine_similarity
from repro.models.lexicon import default_lexicon


@pytest.fixture()
def model():
    return EmbeddingModel()


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1, 0, 2], [1, 0, 2]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0


class TestWordEmbeddings:
    def test_deterministic(self, model):
        a = model.embed_word("gun")
        b = EmbeddingModel().embed_word("gun")
        assert np.allclose(a, b)

    def test_same_cluster_words_are_similar(self, model):
        sim_related = cosine_similarity(model.embed_word("gun"), model.embed_word("murder"))
        sim_unrelated = cosine_similarity(model.embed_word("gun"), model.embed_word("garden"))
        assert sim_related > 0.4
        assert sim_related > sim_unrelated + 0.3

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dimensions=4)

    def test_text_embedding_is_mean_of_words(self, model):
        text_vec = model.embed_text("gun murder")
        mean_vec = (model.embed_word("gun") + model.embed_word("murder")) / 2
        assert np.allclose(text_vec, mean_vec)

    def test_empty_text_embeds_to_zero(self, model):
        assert not model.embed_text("").any()


class TestSimilarityAPIs:
    def test_similarity_between_texts(self, model):
        assert model.similarity("a violent gunfight", "a murder and an attack") > \
            model.similarity("a violent gunfight", "a quiet garden walk")

    def test_max_similarity(self, model):
        score = model.max_similarity(["gun"], ["murder", "garden"])
        assert score == pytest.approx(
            cosine_similarity(model.embed_word("gun"), model.embed_word("murder")))

    def test_aggregate_similarity_monotonic_in_matches(self, model):
        keywords = ["gun", "murder", "attack"]
        few = model.aggregate_similarity(keywords, ["murder"])
        many = model.aggregate_similarity(keywords, ["murder", "gun", "attack", "threat"])
        assert 0.0 <= few <= many <= 1.0

    def test_aggregate_similarity_empty(self, model):
        assert model.aggregate_similarity([], ["x"]) == 0.0
        assert model.aggregate_similarity(["x"], []) == 0.0

    def test_match_fraction_density(self, model):
        keywords = ["gun", "murder", "attack", "threat", "kill"]
        dense = model.match_fraction(keywords, ["murder", "gun", "attack"])
        sparse = model.match_fraction(keywords, ["murder", "garden", "tea", "dinner"])
        assert dense == pytest.approx(1.0)
        assert sparse == pytest.approx(0.25)

    def test_nearest_ranks_candidates(self, model):
        ranked = model.nearest("violent gunfight", ["a murder scene", "a tea party"], top_k=2)
        assert ranked[0][0] == "a murder scene"

    def test_unknown_lexicon_concepts_are_ignored(self):
        lexicon = default_lexicon()
        model = EmbeddingModel(lexicon=lexicon)
        lexicon.add_terms("brand_new_concept", ["gizmo"])
        # Must not raise even though the concept has no axis.
        assert model.embed_word("gizmo") is not None


class TestCostAccounting:
    def test_embedding_charges_tokens(self):
        meter = CostMeter()
        model = EmbeddingModel(cost_meter=meter)
        model.embed_text("some text to embed", purpose="unit_test")
        assert meter.total_tokens > 0
        assert meter.tokens_for_purpose("unit_test") > 0

    def test_no_meter_no_error(self, model):
        model.embed_text("no meter attached")

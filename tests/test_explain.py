"""Tests for the explainer and the NL-over-lineage interface (Figure 5)."""

import pytest

from repro.errors import ExplanationError
from repro.explain.explainer import Explainer
from repro.explain.lineage_query import LineageQueryInterface


@pytest.fixture(scope="module")
def explain_env(loaded_db, flagship_result):
    explainer = Explainer(loaded_db.models, registry=loaded_db.registry)
    qa = LineageQueryInterface(loaded_db.models, explainer)
    return loaded_db, flagship_result, explainer, qa


class TestCoarseExplanation:
    def test_pipeline_overview_lists_every_operator(self, explain_env):
        db, result, explainer, _ = explain_env
        text = explainer.explain_pipeline(result)
        assert text.startswith("How KathDB answered")
        # One numbered line per executed operator, in order.
        assert f"{len(result.physical_plan)}:" in text
        assert "boring" in text.lower()
        assert "rank" in text.lower()
        assert "rows)" in text

    def test_pipeline_explanation_requires_plan(self, explain_env):
        db, result, explainer, _ = explain_env
        from repro.executor.result import QueryResult
        from repro.relational.schema import Schema
        from repro.relational.table import Table
        empty = QueryResult(nl_query="x", final_table=Table("t", Schema([])))
        with pytest.raises(ExplanationError):
            explainer.explain_pipeline(empty)


class TestFineGrainedExplanation:
    def test_top_tuple_explanation_matches_figure5(self, explain_env):
        db, result, explainer, _ = explain_env
        top = result.rows()[0]
        explanation = explainer.explain_tuple(result, top["lid"])
        assert explanation.produced_by == "combine_scores"
        text = explanation.describe()
        assert "weighted sum" in text
        assert "0.7" in text and "0.3" in text
        assert "recency_score" in text
        assert "boring" in text
        assert "derivation chain" in text
        assert "def combine_scores" in text  # the persisted implementation source

    def test_explanation_traces_back_to_sources(self, explain_env):
        db, result, explainer, _ = explain_env
        explanation = explainer.explain_tuple(result, result.rows()[0]["lid"])
        assert any("src=file://data/mmqa" in line for line in explanation.ancestry)
        assert any("load_data" in line for line in explanation.ancestry)

    def test_intermediate_tuple_explanation(self, explain_env):
        db, result, explainer, _ = explain_env
        intermediate = result.intermediates["films_with_excitement"]
        lid = intermediate.rows[0]["lid"]
        explanation = explainer.explain_tuple(result, lid)
        assert explanation.produced_by == "gen_excitement_score"
        assert any("excitement_score" in d for d in explanation.field_derivations)

    def test_unknown_lid_raises(self, explain_env):
        db, result, explainer, _ = explain_env
        with pytest.raises(ExplanationError):
            explainer.explain_tuple(result, 10_000_000)


class TestLineageQA:
    def test_explain_tuple_question(self, explain_env):
        db, result, _, qa = explain_env
        lid = result.rows()[0]["lid"]
        answer = qa.ask(f"Explain tuple {lid}?", result)
        assert f"lid={lid}" in answer
        assert "weighted sum" in answer

    def test_explain_pipeline_question(self, explain_env):
        db, result, _, qa = explain_env
        answer = qa.ask("Can you explain the full pipeline?", result)
        assert answer.startswith("How KathDB answered")

    def test_which_function_produced_column(self, explain_env):
        db, result, _, qa = explain_env
        answer = qa.ask("Which function produced the column 'final_score'?", result)
        assert "combine_scores" in answer
        base_column = qa.ask("Which function produced 'title'?", result)
        assert "base relation" in base_column

    def test_row_count_question(self, explain_env):
        db, result, _, qa = explain_env
        answer = qa.ask("How many rows did filter_boring produce?", result)
        assert "produced" in answer and "rows" in answer
        missing = qa.ask("How many rows did nonexistent_operator produce?", result)
        assert "no execution record" in missing

    def test_version_question(self, explain_env):
        db, result, _, qa = explain_env
        answer = qa.ask("Which function versions were used?", result)
        assert "gen_excitement_score" in answer

    def test_fallback_summary(self, explain_env):
        db, result, _, qa = explain_env
        answer = qa.ask("Tell me something.", result)
        assert "lineage entries" in answer

    def test_sql_over_lineage(self, explain_env):
        db, result, _, qa = explain_env
        table = qa.sql(
            "SELECT count(*) AS n FROM lineage WHERE func_id = 'combine_scores'", result)
        assert table[0]["n"] > 0


class TestKathDBExplanationFacade:
    def test_ask_records_transcript_entry(self, explain_env):
        db, result, _, _ = explain_env
        before = len(result.transcript)
        answer = db.ask("explain the pipeline", result)
        assert answer
        assert len(result.transcript) == before + 1

    def test_explain_helpers(self, explain_env):
        db, result, _, _ = explain_env
        assert db.explain_pipeline(result)
        lid = result.rows()[0]["lid"]
        assert db.explain_tuple(result, lid).lid == lid

"""Unit tests for schemas and columns."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType


class TestColumn:
    def test_string_type_is_normalized(self):
        column = Column("year", "integer")
        assert column.data_type is DataType.INTEGER

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.TEXT)

    def test_validate_nullable(self):
        assert Column("x", DataType.TEXT).validate(None) is None

    def test_validate_not_nullable(self):
        with pytest.raises(SchemaError):
            Column("x", DataType.TEXT, nullable=False).validate(None)

    def test_roundtrip_dict(self):
        column = Column("score", DataType.FLOAT, nullable=False, description="a score")
        assert Column.from_dict(column.to_dict()) == column


class TestSchemaConstruction:
    def test_of_pairs(self):
        schema = Schema.of(("title", "text"), ("year", "int"))
        assert schema.column_names() == ["title", "year"]
        assert schema.column("year").data_type is DataType.INTEGER

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", "int"), ("A", "text"))

    def test_infer_from_rows(self):
        schema = Schema.infer([
            {"title": None, "year": 1991},
            {"title": "x", "year": 1988, "score": 0.5},
        ])
        assert schema.column("title").data_type is DataType.TEXT
        assert schema.column("year").data_type is DataType.INTEGER
        assert schema.column("score").data_type is DataType.FLOAT


class TestSchemaLookups:
    def setup_method(self):
        self.schema = Schema.of(("title", "text"), ("year", "int"), ("score", "float"))

    def test_case_insensitive_lookup(self):
        assert self.schema.column("TITLE").name == "title"
        assert self.schema.has_column("Year")
        assert "score" in self.schema

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            self.schema.column("missing")

    def test_index_of(self):
        assert self.schema.index_of("year") == 1

    def test_len_and_iter(self):
        assert len(self.schema) == 3
        assert [c.name for c in self.schema] == ["title", "year", "score"]


class TestSchemaTransformations:
    def setup_method(self):
        self.schema = Schema.of(("title", "text"), ("year", "int"), ("score", "float"))

    def test_project_reorders(self):
        assert self.schema.project(["score", "title"]).column_names() == ["score", "title"]

    def test_rename(self):
        renamed = self.schema.rename({"title": "name"})
        assert renamed.column_names() == ["name", "year", "score"]

    def test_add_and_drop(self):
        extended = self.schema.add(Column("flag", DataType.BOOLEAN))
        assert "flag" in extended
        assert "year" not in extended.drop(["year"])

    def test_merge_disambiguates_collisions(self):
        other = Schema.of(("title", "text"), ("plot", "text"))
        merged = self.schema.merge(other)
        assert merged.column_names() == ["title", "year", "score", "title_right", "plot"]

    def test_equality_by_names_and_types(self):
        same = Schema.of(("title", "text"), ("year", "int"), ("score", "float"))
        assert self.schema == same
        assert self.schema != Schema.of(("title", "text"))


class TestValidateRow:
    def setup_method(self):
        self.schema = Schema.of(("title", "text", False), ("year", "int"))

    def test_coerces_and_fills_missing(self):
        row = self.schema.validate_row({"title": "x"})
        assert row == {"title": "x", "year": None}

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            self.schema.validate_row({"title": "x", "bogus": 1})

    def test_case_insensitive_keys(self):
        row = self.schema.validate_row({"TITLE": "x", "Year": "1991"})
        assert row["title"] == "x" and row["year"] == 1991

    def test_describe_mentions_types(self):
        description = self.schema.describe()
        assert "title TEXT NOT NULL" in description
        assert "year INTEGER NULL" in description

"""Unit tests for cost accounting, model cascades, and the model suite."""

import pytest

from repro.models.base import ModelSuite
from repro.models.cascade import CascadeStage, ModelCascade
from repro.models.cost import CostMeter, ModelCall


class TestCostMeter:
    def test_record_and_totals(self):
        meter = CostMeter()
        meter.record("llm:sim", "parse", 100, 20)
        meter.record("vlm:sim", "scene", 400, 50)
        assert len(meter) == 2
        assert meter.total_tokens == 570
        assert meter.total_latency_s > 0

    def test_by_model_and_purpose(self):
        meter = CostMeter()
        meter.record("llm:sim", "parse", 100, 20)
        meter.record("llm:sim", "codegen", 30, 30)
        by_model = meter.by_model()
        assert by_model["llm:sim"].calls == 2
        assert meter.by_purpose()["parse"].total_tokens == 120
        assert meter.tokens_for_purpose("codegen") == 60

    def test_snapshot_window(self):
        meter = CostMeter()
        meter.record("llm:sim", "a", 10, 0)
        marker = meter.snapshot()
        meter.record("llm:sim", "b", 5, 5)
        assert meter.tokens_since(marker) == 10

    def test_negative_tokens_clamped(self):
        call = CostMeter().record("llm:sim", "x", -5, 3)
        assert call.prompt_tokens == 0 and call.total_tokens == 3

    def test_explicit_latency(self):
        call = CostMeter().record("llm:sim", "x", 10, 10, latency_s=1.5)
        assert call.latency_s == 1.5

    def test_reset(self):
        meter = CostMeter()
        meter.record("llm:sim", "x", 10, 0)
        meter.reset()
        assert meter.total_tokens == 0 and len(meter) == 0

    def test_report_mentions_total(self):
        meter = CostMeter()
        meter.record("llm:sim", "x", 10, 0)
        assert "TOTAL" in meter.report()


class TestModelCascade:
    @staticmethod
    def _stage(name, prediction, confidence, threshold=0.8):
        return CascadeStage(name=name, predict=lambda item: (prediction, confidence),
                            threshold=threshold)

    def test_cheap_stage_answers_when_confident(self):
        cascade = ModelCascade([self._stage("cheap", True, 0.95),
                                self._stage("expensive", False, 0.99)])
        decision = cascade.run("item")
        assert decision.stage_name == "cheap" and decision.stages_used == 1

    def test_escalates_on_low_confidence(self):
        cascade = ModelCascade([self._stage("cheap", True, 0.3),
                                self._stage("expensive", False, 0.99)])
        decision = cascade.run("item")
        assert decision.stage_name == "expensive" and decision.stages_used == 2

    def test_final_stage_always_accepted(self):
        cascade = ModelCascade([self._stage("only", "answer", 0.1)])
        assert cascade.run("item").prediction == "answer"

    def test_empty_cascade_rejected(self):
        with pytest.raises(ValueError):
            ModelCascade([])

    def test_escalation_rate_and_usage(self):
        def confidence_by_value(item):
            return ("yes", 0.9) if item > 5 else ("yes", 0.2)

        cascade = ModelCascade([
            CascadeStage("cheap", confidence_by_value, threshold=0.8),
            self._stage("expensive", "yes", 0.99),
        ])
        items = [1, 2, 9, 10]
        assert cascade.escalation_rate(items) == 0.5
        usage = cascade.stage_usage(items)
        assert usage == {"cheap": 2, "expensive": 2}

    def test_escalation_rate_empty(self):
        cascade = ModelCascade([self._stage("only", 1, 1.0)])
        assert cascade.escalation_rate([]) == 0.0


class TestModelSuite:
    def test_create_wires_shared_meter_and_lexicon(self):
        suite = ModelSuite.create(seed=1)
        assert suite.llm.cost_meter is suite.cost_meter
        assert suite.vlm.cost_meter is suite.cost_meter
        assert suite.embeddings.cost_meter is suite.cost_meter
        assert suite.llm.lexicon is suite.lexicon

    def test_reset_costs(self):
        suite = ModelSuite.create(seed=1)
        suite.llm.generate_keywords("exciting")
        assert suite.cost_meter.total_tokens > 0
        suite.reset_costs()
        assert suite.cost_meter.total_tokens == 0

    def test_independent_lexicons_between_suites(self):
        a = ModelSuite.create(seed=1)
        b = ModelSuite.create(seed=1)
        a.lexicon.add_terms("excitement", ["zipline"])
        assert "excitement" not in b.lexicon.concepts_of_term("zipline")

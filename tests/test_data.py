"""Unit tests for the synthetic multimodal corpus (images, text, MMQA, workloads)."""

import numpy as np
import pytest

from repro.data.images import PosterGenerator, SyntheticImage, ImageObject
from repro.data.mmqa import build_movie_corpus
from repro.data.text import PlotGenerator
from repro.data.workloads import (
    build_default_workload,
    ranking_accuracy,
    set_f1,
)


class TestSyntheticImages:
    def test_generator_rejects_unknown_style(self):
        with pytest.raises(ValueError):
            PosterGenerator().generate("X", "psychedelic")

    def test_boring_vs_vivid_properties(self):
        generator = PosterGenerator(seed=11)
        boring = generator.generate("Quiet Drama", "boring")
        vivid = generator.generate("Action Blast", "vivid")
        assert len(boring.objects) <= 2
        assert len(vivid.objects) >= 4
        assert vivid.saturation() > boring.saturation()
        assert boring.style == "boring" and vivid.style == "vivid"

    def test_render_pixels_shape_and_cache(self):
        image = PosterGenerator(seed=1).generate("T", "vivid")
        pixels = image.render_pixels()
        assert pixels.shape == (image.height, image.width, 3)
        assert pixels.dtype == np.uint8
        assert image.render_pixels() is pixels  # cached

    def test_deterministic_generation(self):
        a = PosterGenerator(seed=5).generate("Same Title", "vivid")
        b = PosterGenerator(seed=5).generate("Same Title", "vivid")
        assert [o.class_name for o in a.objects] == [o.class_name for o in b.objects]
        assert a.relationships == b.relationships

    def test_text_overlay_and_uri(self):
        image = PosterGenerator().generate("My Great Movie", "boring")
        assert image.text_overlay == "My Great Movie"
        assert image.uri.startswith("file://posters/my_great_movie")

    def test_coverage_bounded(self):
        image = SyntheticImage(uri="x", width=10, height=10, objects=[
            ImageObject("person", (0, 0, 10, 10)), ImageObject("person", (0, 0, 10, 10))])
        assert image.coverage() == 1.0


class TestPlotGenerator:
    def test_excitement_controls_vocabulary(self):
        generator = PlotGenerator(seed=2)
        exciting = generator.generate("Thrill Ride", 1.0)
        calm = generator.generate("Quiet Hours", 0.0)
        exciting_words = {"gunfight", "explosion", "killers", "assassin", "threat", "bomb",
                          "accused", "kill", "shootout", "violent", "fugitive"}
        assert any(word in exciting.lower() for word in exciting_words)
        assert not any(word in calm.lower() for word in exciting_words)

    def test_character_names_are_stable_and_distinct(self):
        generator = PlotGenerator(seed=2)
        names_a = generator.character_names("Some Movie")
        names_b = PlotGenerator(seed=2).character_names("Some Movie")
        assert names_a == names_b
        assert len(set(names_a)) == len(names_a)

    def test_plot_mentions_title_and_characters(self):
        generator = PlotGenerator(seed=3)
        plot = generator.generate("The Archivist", 0.4)
        assert plot.startswith("The Archivist follows")

    def test_excitement_clamped(self):
        generator = PlotGenerator(seed=1)
        assert generator.generate("X", 5.0)
        assert generator.generate("X", -3.0)


class TestMovieCorpus:
    def test_contains_figure6_movies(self, corpus):
        guilty = corpus.by_title("Guilty by Suspicion")
        clean = corpus.by_title("Clean and Sober")
        assert guilty.year == 1991 and clean.year == 1988
        assert guilty.gt_boring_poster and clean.gt_boring_poster
        assert guilty.gt_excitement > clean.gt_excitement

    def test_size_and_ids_unique(self, corpus):
        assert len(corpus) == 20
        ids = [m.movie_id for m in corpus]
        assert len(set(ids)) == len(ids)

    def test_lookup_helpers(self, corpus):
        movie = corpus.by_id(1)
        assert movie.title == "Guilty by Suspicion"
        assert corpus.by_title("Nonexistent") is None
        assert corpus.image_by_uri(movie.poster_uri) is movie.poster
        assert corpus.document_text(movie.document_id) == movie.plot

    def test_to_tables_schema(self, corpus):
        tables = corpus.to_tables()
        assert set(tables) == {"movie_table", "film_plot", "poster_images"}
        assert len(tables["movie_table"]) == len(corpus)
        assert tables["poster_images"].schema.has_column("image")
        assert tables["film_plot"][0]["plot"]

    def test_ground_truth_ranking_top2(self, corpus):
        ranking = corpus.ground_truth_ranking()
        assert [m.title for m in ranking[:2]] == ["Guilty by Suspicion", "Clean and Sober"]

    def test_ground_truth_ranking_without_filter(self, corpus):
        full = corpus.ground_truth_ranking(boring_only=False)
        assert len(full) == len(corpus)

    def test_larger_corpus_generation(self):
        corpus = build_movie_corpus(size=30, seed=1)
        assert len(corpus) == 30
        # Generated fillers with boring posters must stay low-excitement so the
        # Figure 6 ordering holds at any corpus size.
        for movie in corpus:
            if movie.movie_id > 20 and movie.gt_boring_poster:
                assert movie.gt_excitement <= 0.35

    def test_minimum_size(self):
        corpus = build_movie_corpus(size=1)
        assert len(corpus) == 2

    def test_deterministic_for_seed(self):
        a = build_movie_corpus(size=25, seed=9)
        b = build_movie_corpus(size=25, seed=9)
        assert [m.title for m in a] == [m.title for m in b]
        assert [m.plot for m in a] == [m.plot for m in b]


class TestWorkloads:
    def test_default_workload_contains_flagship(self, corpus):
        workload = build_default_workload()
        flagship = workload.query("flagship_exciting_boring")
        expected = flagship.expected_titles(corpus)
        assert expected[:2] == ["Guilty by Suspicion", "Clean and Sober"]
        assert len(workload) >= 5

    def test_unknown_query_name(self):
        with pytest.raises(KeyError):
            build_default_workload().query("nope")

    def test_ground_truth_functions(self, corpus):
        workload = build_default_workload()
        boring = workload.query("find_boring_posters").expected_titles(corpus)
        assert "Guilty by Suspicion" in boring
        assert "Midnight Circuit" not in boring
        recent = workload.query("recent_exciting").expected_titles(corpus)
        assert all(corpus.by_title(t).year > 2000 for t in recent)

    def test_query_without_ground_truth(self, corpus):
        from repro.data.workloads import WorkloadQuery
        query = WorkloadQuery(name="x", nl_query="whatever")
        assert query.expected_titles(corpus) == []


class TestMetrics:
    def test_ranking_accuracy(self):
        assert ranking_accuracy(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert ranking_accuracy(["c", "b", "a"], ["a", "b", "c"], top_k=3) == 1.0
        assert ranking_accuracy(["x", "y"], ["a", "b"], top_k=2) == 0.0
        assert ranking_accuracy([], []) == 1.0
        assert ranking_accuracy(["x"], []) == 0.0

    def test_set_f1(self):
        assert set_f1(["a", "b"], ["a", "b"]) == 1.0
        assert set_f1([], []) == 1.0
        assert set_f1(["a"], []) == 0.0
        assert set_f1(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

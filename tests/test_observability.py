"""Tests for the unified observability layer (``repro.obs``).

Covers the tentpole contract: per-query span trees (well-formed even when a
query errors or hits the repair loop), cross-session attribution of
coalesced-follower and batched-chunk gateway work, the service-wide metrics
registry backing the legacy stats surfaces unchanged, and the sinks (ring
buffer, JSONL, Chrome trace_event export, slow-query log).
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    KathDBConfig,
    KathDBService,
    QueryRequest,
    SilentUser,
    build_movie_corpus,
)
from repro.gateway.gateway import GatewayConfig, ModelGateway
from repro.gateway.vectorized import GatewayBatchClient
from repro.models.cost import CostMeter
from repro.obs import (
    EventLog,
    JsonlTraceSink,
    MetricsRegistry,
    SlowQueryLog,
    TraceRingBuffer,
    Tracer,
    chrome_trace_events,
)
from repro.obs.trace import attach, current_span, current_trace, record_span
from repro.obs.trace import span as obs_span

BORING_QUERY = "Which films have a boring poster?"


class CountingModel:
    """Instrumented stand-in model: counts executions, charges tokens."""

    name = "stub:counting"

    def __init__(self, meter=None, latency_s=0.0, tokens=15):
        self.cost_meter = meter
        self.latency_s = latency_s
        self.tokens = tokens
        self.calls = 0
        self._lock = threading.Lock()

    def ask(self, prompt, purpose="ask"):
        with self._lock:
            self.calls += 1
        if self.latency_s:
            time.sleep(self.latency_s)
        if self.cost_meter is not None:
            self.cost_meter.record(self.name, purpose,
                                   prompt_tokens=self.tokens,
                                   completion_tokens=0)
        return {"echo": prompt}


@pytest.fixture(scope="module")
def corpus():
    return build_movie_corpus(size=6, seed=7)


def fresh_service(corpus, **overrides) -> KathDBService:
    defaults = dict(seed=7, monitor_enabled=False, explore_variants=False)
    defaults.update(overrides)
    svc = KathDBService(KathDBConfig(**defaults))
    svc.load_corpus(corpus)
    return svc


def assert_well_formed(trace):
    """Single root, unique ids, no orphans, every span finished."""
    ids = [s.span_id for s in trace.spans]
    assert len(ids) == len(set(ids))
    roots = [s for s in trace.spans if s.parent_id is None]
    assert len(roots) == 1 and roots[0] is trace.root
    known = set(ids)
    for span in trace.spans:
        if span.parent_id is not None:
            assert span.parent_id in known, f"orphan span {span.span_id}"
        assert span.finished, f"unfinished span {span.span_id}"
        assert span.duration_ms >= 0.0


# -- span trees -------------------------------------------------------------------

class TestSpanTrees:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.trace("query", session_id="s1") as trace:
            with obs_span("outer", kind="stage") as outer:
                with obs_span("inner", kind="operator", rows_in=3) as inner:
                    assert current_span() is inner
                assert current_span() is outer
        assert trace.finished and trace.status == "ok"
        assert_well_formed(trace)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == trace.root.span_id
        assert inner.tags["rows_in"] == 3
        assert trace.root.tags["session"] == "s1"

    def test_span_is_noop_without_an_active_trace(self):
        assert current_trace() is None
        with obs_span("orphan") as sp:
            assert sp.is_recording is False
            sp.tag(ignored=True)          # must not raise
        record_span("also-orphan", kind="model")   # must not raise

    def test_disabled_tracer_yields_none(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query") as trace:
            assert trace is None
            with obs_span("child") as sp:
                assert sp.is_recording is False

    def test_error_finishes_the_tree_well_formed(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("query") as trace:
                with obs_span("execute", kind="stage"):
                    with obs_span("op", kind="operator"):
                        raise RuntimeError("mid-operator failure")
        assert trace.finished and trace.status == "error"
        assert_well_formed(trace)
        errored = [s for s in trace.spans if s.status == "error"]
        # The failing span and every enclosing scope report the error.
        assert len(errored) == 3

    def test_attach_records_onto_a_foreign_threads_trace(self):
        tracer = Tracer()
        with tracer.trace("query") as trace:
            def worker():
                with attach(trace):
                    with obs_span("compile:x", kind="stage"):
                        pass
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert_well_formed(trace)
        names = [s.name for s in trace.spans]
        assert "compile:x" in names


# -- metrics ----------------------------------------------------------------------

class TestMetrics:
    def test_histogram_percentiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms.test")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert 40.0 <= summary["p50"] <= 60.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= 100.0

    def test_span_finish_feeds_the_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.trace("query", session_id="s9") as trace:
            trace.root.tag(tokens=42)
            with obs_span("op", kind="operator"):
                pass
            record_span("m.ask", kind="model", outcome="exact-hit")
        assert registry.span_count("query") == 1
        assert registry.span_count("operator") == 1
        assert registry.counter("model_calls.exact-hit").value == 1
        assert registry.counter("query_tokens").value == 42
        assert registry.histogram("latency_ms.query").count == 1
        # The query-finish event carries the session for windowed views.
        events = registry.events.window(60.0, session_id="s9")
        assert len(events) == 1 and events[0][1] == "query"

    def test_event_log_windows_by_horizon_and_session(self):
        log = EventLog()
        log.append("hits", count=1, value=5, session_id="a")
        log.append("misses", count=2, value=7, session_id="b")
        assert len(log.window(60.0)) == 2
        assert len(log.window(60.0, session_id="a")) == 1
        assert len(log.window(0.0)) == 0

    def test_views_surface_provider_dicts(self):
        registry = MetricsRegistry()
        registry.register_view("gw", lambda: {"hits": 3})
        assert registry.view("gw") == {"hits": 3}
        with pytest.raises(KeyError):
            registry.view("unknown")


# -- sinks ------------------------------------------------------------------------

class TestSinks:
    def _finished_trace(self, name="query", slow_operator_s=0.0, tracer=None):
        tracer = tracer if tracer is not None else Tracer()
        with tracer.trace(name, session_id="s1") as trace:
            trace.root.tag(query="q")
            with obs_span("fast_op", kind="operator"):
                pass
            with obs_span("slow_op", kind="operator"):
                if slow_operator_s:
                    time.sleep(slow_operator_s)
        return trace

    def test_ring_buffer_keeps_the_newest(self):
        ring = TraceRingBuffer(capacity=2)
        tracer = Tracer()
        traces = [self._finished_trace(tracer=tracer) for _ in range(3)]
        for trace in traces:
            ring.add(trace)
        assert len(ring) == 2
        assert ring.list() == traces[1:]
        assert ring.get(traces[2].trace_id) is traces[2]
        assert ring.get(traces[0].trace_id) is None   # evicted

    def test_jsonl_sink_appends_one_record_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(path)
        sink.write(self._finished_trace())
        sink.write(self._finished_trace())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2 and sink.written == 2
        record = json.loads(lines[0])
        assert record["status"] == "ok" and record["spans"]

    def test_jsonl_sink_buffers_until_flush(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(path, buffer_lines=10)
        sink.write(self._finished_trace())
        sink.write(self._finished_trace())
        # Buffered: counted as written, not yet on disk.
        assert sink.written == 2
        assert not path.exists() or not path.read_text().strip()
        sink.flush()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_jsonl_sink_close_drains_and_refuses_writes(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(path, buffer_lines=100)
        sink.write(self._finished_trace())
        sink.close()
        sink.close()   # idempotent
        assert len(path.read_text().strip().splitlines()) == 1
        sink.write(self._finished_trace())   # after close: dropped
        assert len(path.read_text().strip().splitlines()) == 1

    def test_chrome_trace_events_structure(self):
        tracer = Tracer()
        traces = [self._finished_trace(tracer=tracer) for _ in range(2)]
        events = chrome_trace_events(traces)
        metas = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 2                     # one lane name per trace
        assert len(slices) == sum(len(t.spans) for t in traces)
        assert len({e["tid"] for e in slices}) == 2
        for event in slices:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_slow_query_log_names_the_slowest_operator(self):
        trace = self._finished_trace(slow_operator_s=0.02)
        log = SlowQueryLog(threshold_ms=1.0)
        log.observe(trace)
        log.observe(self._finished_trace())        # fast: only logged if slow
        entries = log.entries()
        assert entries and entries[0]["trace_id"] == trace.trace_id
        slowest = entries[0]["slowest_operator"]
        assert slowest["name"] == "slow_op"
        assert trace.find(slowest["span_id"]).kind == "operator"

    def test_slow_query_log_disabled_without_threshold(self):
        log = SlowQueryLog(threshold_ms=None)
        assert not log.enabled
        log.observe(self._finished_trace(slow_operator_s=0.01))
        assert log.entries() == []


# -- gateway attribution ----------------------------------------------------------

class TestGatewayAttribution:
    def test_coalesced_follower_attributes_to_its_own_trace(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False))
        tracer = Tracer()
        models = {sid: CountingModel(CostMeter(), latency_s=0.15)
                  for sid in ("a", "b")}
        barrier = threading.Barrier(2)
        traces = {}

        def call(sid):
            with tracer.trace("query", session_id=sid) as trace:
                traces[sid] = trace
                barrier.wait()
                return gateway.client(sid).invoke(models[sid], "ask",
                                                  ("same",), {})

        with ThreadPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(call, ("a", "b")))
        assert results[0] == results[1]

        outcomes = {}
        for sid, trace in traces.items():
            assert_well_formed(trace)
            model_spans = [s for s in trace.spans if s.kind == "model"]
            assert len(model_spans) == 1
            assert model_spans[0].parent_id == trace.root.span_id
            outcomes[sid] = model_spans[0].tags["outcome"]
        # One leader executed; the other's span is the follower wait,
        # recorded on its *own* trace.
        assert sorted(outcomes.values()) == ["coalesced-follower", "executed"]

    def test_batched_chunk_span_lands_on_the_issuing_trace(self):
        gateway = ModelGateway(GatewayConfig())
        tracer = Tracer()
        client = GatewayBatchClient(gateway.client("s"))
        model = CountingModel(CostMeter())
        calls = [((f"p{i}",), {}) for i in range(4)]
        with tracer.trace("query", session_id="s") as trace:
            client.invoke(model, "ask", calls)
        assert_well_formed(trace)
        chunk_spans = [s for s in trace.spans
                       if s.tags.get("outcome") == "batched-chunk"]
        assert len(chunk_spans) == 1
        assert chunk_spans[0].tags["batch_size"] == 4

        # Re-issuing the batch answers every member from the shared cache:
        # the members aggregate into one exact-hit model span (mirroring
        # the chunk span), still on the caller's trace.
        with tracer.trace("query", session_id="s") as rerun:
            client.invoke(model, "ask", calls)
        hits = [s for s in rerun.spans
                if s.tags.get("outcome") == "exact-hit"]
        assert len(hits) == 1
        assert hits[0].tags["members"] == 4


# -- service integration ----------------------------------------------------------

class TestServiceObservability:
    def test_response_carries_trace_and_latency(self, corpus):
        svc = fresh_service(corpus)
        response = svc.query(BORING_QUERY)
        assert response.ok
        assert response.latency_ms > 0
        assert response.trace_id and response.trace_spans
        assert f"{response.trace_id}" in response.describe()
        trace = svc.trace(response.trace_id)
        assert trace is not None and trace.finished
        assert_well_formed(trace)
        kinds = {s.kind for s in trace.spans}
        assert {"query", "stage", "operator", "model"} <= kinds
        stages = {s.name for s in trace.spans if s.kind == "stage"}
        assert {"prepare", "execute"} <= stages
        outcomes = {s.tags.get("outcome") for s in trace.spans
                    if s.kind == "model"}
        assert outcomes <= {"exact-hit", "semantic-hit", "coalesced-follower",
                            "batched-chunk", "executed"}

    def test_concurrent_batch_attributes_spans_per_session(self, corpus):
        svc = fresh_service(corpus, simulate_model_latency=0.5,
                            enable_micro_batching=False)
        requests = [QueryRequest(nl_query=BORING_QUERY, user=SilentUser())
                    for _ in range(4)]
        responses = svc.query_batch(requests, jobs=4)
        assert all(r.ok for r in responses)
        trace_ids = [r.trace_id for r in responses]
        assert len(set(trace_ids)) == 4

        shared_outcomes = 0
        for response in responses:
            trace = svc.trace(response.trace_id)
            assert trace is not None
            assert_well_formed(trace)
            # Every span of this trace belongs to this response's session.
            assert trace.session_id == response.session_id
            assert trace.root.tags["session"] == response.session_id
            for span in trace.spans:
                if span.kind == "model" and span.tags.get("outcome") in (
                        "exact-hit", "semantic-hit", "coalesced-follower"):
                    shared_outcomes += 1
        # Identical concurrent queries must share work — and each share
        # must be visible in the *waiting* session's own trace.
        assert shared_outcomes > 0

    def test_shutdown_flushes_buffered_trace_sink(self, corpus, tmp_path):
        path = tmp_path / "traces.jsonl"
        svc = fresh_service(corpus, trace_jsonl_path=path)
        # Buffer aggressively: only shutdown's close() drains to disk.
        svc._trace_sink.buffer_lines = 1000
        assert svc.query(BORING_QUERY).ok
        svc.shutdown()
        svc.shutdown()   # idempotent: the second close must not re-drain
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 1
        assert svc._trace_sink._closed

    def test_error_query_still_produces_a_finished_tree(self, corpus,
                                                        monkeypatch):
        svc = fresh_service(corpus)

        def boom(*args, **kwargs):
            raise RuntimeError("engine down")

        monkeypatch.setattr("repro.executor.engine.ExecutionEngine.execute",
                            boom)
        response = svc.query(BORING_QUERY)
        assert not response.ok
        assert response.trace_id is not None
        assert response.latency_ms > 0
        trace = svc.trace(response.trace_id)
        assert trace is not None and trace.finished
        assert trace.status == "error"
        assert_well_formed(trace)

    def test_repair_loop_shows_up_as_repair_spans(self, corpus):
        svc = fresh_service(corpus)
        session = svc.session(name="rep")
        engine = session.stack.engine
        original_repair = engine.coder.repair
        from repro.errors import FunctionExecutionError

        class FlakyFunction:
            """Delegate that fails once, then behaves."""

            def __init__(self, wrapped):
                self._wrapped = wrapped
                self._failed = False

            def __getattr__(self, name):
                return getattr(self._wrapped, name)

            def execute(self, inputs, context):
                if not self._failed:
                    self._failed = True
                    raise FunctionExecutionError("transient fault")
                return self._wrapped.execute(inputs, context)

        def repair_passthrough(node, function, hint):
            wrapped = getattr(function, "_wrapped", function)
            return original_repair(node, wrapped, hint)

        engine.coder.repair = repair_passthrough
        original_execute = engine._execute_operator
        state = {"armed": True}

        def execute_with_fault(operator, context, channel, result):
            if state["armed"]:
                state["armed"] = False
                operator.function = FlakyFunction(operator.function)
            return original_execute(operator, context, channel, result)

        engine._execute_operator = execute_with_fault
        response = session.query(BORING_QUERY)
        assert response.ok
        trace = svc.trace(response.trace_id)
        assert_well_formed(trace)
        repairs = [s for s in trace.spans
                   if s.name == "repair" and s.kind == "stage"]
        assert repairs and repairs[0].tags["reason"] == "runtime-error"
        # The repair nests inside the operator that failed.
        parent = trace.find(repairs[0].parent_id)
        assert parent is not None and parent.kind == "operator"

    def test_slow_query_log_records_trace_and_operator_span(self, corpus):
        svc = fresh_service(corpus, slow_query_ms=0.0)
        response = svc.query(BORING_QUERY)
        assert response.ok
        entries = svc.slow_queries.entries()
        assert entries
        entry = entries[-1]
        assert entry["trace_id"] == response.trace_id
        slowest = entry["slowest_operator"]
        trace = svc.trace(entry["trace_id"])
        span = trace.find(slowest["span_id"])
        assert span is not None and span.kind == "operator"
        assert "slow-query log" in svc.describe()

    def test_operator_records_link_to_spans(self, corpus):
        svc = fresh_service(corpus)
        response = svc.query(BORING_QUERY)
        trace = svc.trace(response.trace_id)
        for record in response.result.records:
            assert record.span_id is not None
            span = trace.find(record.span_id)
            assert span is not None and span.kind == "operator"
            assert span.name == record.operator_name

    def test_tracing_disabled_is_row_identical_and_silent(self, corpus):
        traced = fresh_service(corpus)
        untraced = fresh_service(corpus, enable_tracing=False)
        a = traced.query(BORING_QUERY)
        b = untraced.query(BORING_QUERY)
        assert a.ok and b.ok
        assert [dict(r) for r in a.result.final_table] == \
            [dict(r) for r in b.result.final_table]
        assert b.trace_id is None and b.trace_spans is None
        assert b.latency_ms > 0                    # latency is always measured
        assert untraced.traces() == []
        # Span-fed surfaces are empty, but the gateway counters still work.
        assert untraced.metrics.span_count("query") == 0
        assert untraced.gateway_stats()["cache_misses"] > 0

    def test_stats_views_keep_their_legacy_shape(self, corpus):
        svc = fresh_service(corpus, enable_skill_store=True)
        assert svc.query(BORING_QUERY).ok
        gateway_stats = svc.gateway.flat_stats()
        for key in ("cache_hits", "cache_misses", "coalesced",
                    "batched_calls", "tokens_saved"):
            assert key in gateway_stats
        skill_stats = svc.skill_stats()
        assert set(skill_stats) == {
            "exact_hits", "near_hits", "misses", "stores",
            "revalidations", "revalidation_failures", "demotions"}
        assert all(isinstance(v, int) for v in skill_stats.values())
        # Both surfaces are views over the shared registry.
        assert svc.metrics.view("gateway") == gateway_stats
        assert svc.metrics.view("skills") == skill_stats

    def test_windowed_stats_ride_the_shared_event_stream(self, corpus):
        svc = fresh_service(corpus)
        assert svc.query(BORING_QUERY).ok
        windowed = svc.gateway.windowed_stats(60.0)
        assert windowed["requests"] > 0
        # The gateway's event log *is* the registry's event log.
        assert svc.gateway.events is svc.metrics.events

    def test_jsonl_sink_and_chrome_export(self, corpus, tmp_path):
        jsonl = tmp_path / "traces.jsonl"
        svc = fresh_service(corpus, trace_jsonl_path=jsonl)
        response = svc.query(BORING_QUERY)
        assert response.ok
        lines = jsonl.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["trace_id"] == response.trace_id

        out = tmp_path / "run.trace.json"
        events = svc.export_chrome_trace(out)
        assert events > 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_metrics_snapshot_covers_the_query(self, corpus):
        svc = fresh_service(corpus)
        assert svc.query(BORING_QUERY).ok
        snapshot = svc.metrics_snapshot()
        assert snapshot["counters"]["spans.query"] == 1
        assert snapshot["histograms"]["latency_ms.query"]["count"] == 1
        assert snapshot["histograms"]["latency_ms.operator"]["count"] > 0

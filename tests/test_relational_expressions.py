"""Unit tests for the scalar expression AST."""

import pytest

from repro.errors import ExpressionError
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Lambda,
    Like,
    Literal,
    UnaryOp,
    and_,
    col,
    eq,
    lit,
    or_,
)

ROW = {"title": "Guilty by Suspicion", "year": 1991, "score": 0.99, "missing": None}


class TestBasics:
    def test_literal(self):
        assert lit(5).evaluate(ROW) == 5
        assert lit("a'b").describe() == "'a''b'"

    def test_column_ref_case_insensitive(self):
        assert ColumnRef("YEAR").evaluate(ROW) == 1991

    def test_column_ref_unknown_raises(self):
        with pytest.raises(ExpressionError):
            ColumnRef("bogus").evaluate(ROW)

    def test_referenced_columns(self):
        expression = and_(eq(col("year"), lit(1991)), BinaryOp(">", col("score"), lit(0.5)))
        assert set(expression.referenced_columns()) == {"year", "score"}


class TestComparisons:
    @pytest.mark.parametrize("op,left,right,expected", [
        ("=", 1991, 1991, True),
        ("!=", 1991, 1990, True),
        ("<>", 1991, 1991, False),
        ("<", 1, 2, True),
        ("<=", 2, 2, True),
        (">", 3, 2, True),
        (">=", 1, 2, False),
    ])
    def test_operators(self, op, left, right, expected):
        assert BinaryOp(op, lit(left), lit(right)).evaluate({}) is expected

    def test_null_comparison_is_false(self):
        assert BinaryOp(">", col("missing"), lit(1)).evaluate(ROW) is False

    def test_string_number_comparison_falls_back_to_text(self):
        assert BinaryOp("=", lit("5"), lit(5)).evaluate({}) in (True, False)


class TestBooleanAndArithmetic:
    def test_and_or_not(self):
        expression = and_(lit(True), or_(lit(False), lit(True)))
        assert expression.evaluate({}) is True
        assert UnaryOp("NOT", lit(True)).evaluate({}) is False

    def test_arithmetic(self):
        assert BinaryOp("+", col("year"), lit(9)).evaluate(ROW) == 2000
        assert BinaryOp("*", lit(2), lit(3)).evaluate({}) == 6
        assert BinaryOp("/", lit(7), lit(2)).evaluate({}) == 3.5
        assert BinaryOp("%", lit(7), lit(2)).evaluate({}) == 1

    def test_division_by_zero_is_null(self):
        assert BinaryOp("/", lit(1), lit(0)).evaluate({}) is None

    def test_arithmetic_with_null_is_null(self):
        assert BinaryOp("+", col("missing"), lit(1)).evaluate(ROW) is None

    def test_bad_operand_types_raise(self):
        with pytest.raises(ExpressionError):
            BinaryOp("+", lit("a"), lit(1)).evaluate({})

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            BinaryOp("**", lit(1), lit(2)).evaluate({})

    def test_unary_minus(self):
        assert UnaryOp("-", lit(3)).evaluate({}) == -3


class TestPredicates:
    def test_is_null(self):
        assert IsNull(col("missing")).evaluate(ROW) is True
        assert IsNull(col("year"), negated=True).evaluate(ROW) is True

    def test_like_wildcards(self):
        assert Like(col("title"), "%suspicion%").evaluate(ROW) is True
        assert Like(col("title"), "guilty _y%").evaluate(ROW) is True
        assert Like(col("title"), "clean%").evaluate(ROW) is False
        assert Like(col("title"), "%sober%", negated=True).evaluate(ROW) is True

    def test_like_escapes_regex_chars(self):
        assert Like(lit("a.b"), "a.b").evaluate({}) is True
        assert Like(lit("axb"), "a.b").evaluate({}) is False

    def test_like_null_is_false(self):
        assert Like(col("missing"), "%x%").evaluate(ROW) is False

    def test_in_list(self):
        assert InList(col("year"), [lit(1988), lit(1991)]).evaluate(ROW) is True
        assert InList(col("year"), [lit(1950)], negated=True).evaluate(ROW) is True


class TestFunctionsAndLambda:
    def test_scalar_functions(self):
        assert FunctionCall("round", [col("score"), lit(1)]).evaluate(ROW) == 1.0
        assert FunctionCall("upper", [col("title")]).evaluate(ROW).startswith("GUILTY")
        assert FunctionCall("length", [col("title")]).evaluate(ROW) == len(ROW["title"])
        assert FunctionCall("coalesce", [col("missing"), lit(7)]).evaluate(ROW) == 7
        assert FunctionCall("concat", [lit("a"), lit("b")]).evaluate({}) == "ab"

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            FunctionCall("sin", [lit(1)]).evaluate({})

    def test_lambda_expression(self):
        expression = Lambda(lambda row: row["score"] * 100, label="pct", columns=["score"])
        assert expression.evaluate(ROW) == 99.0
        assert expression.referenced_columns() == ["score"]
        assert "pct" in expression.describe()

    def test_describe_is_sqlish(self):
        expression = and_(eq(col("year"), lit(1991)), Like(col("title"), "%a%"))
        text = expression.describe()
        assert "year = 1991" in text and "LIKE" in text

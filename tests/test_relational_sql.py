"""Unit tests for the mini-SQL front end."""

import pytest

from repro.errors import SQLSyntaxError
from repro.relational.sql import execute_sql, parse_sql, tokenize_sql


class TestTokenizer:
    def test_tokenizes_keywords_and_literals(self):
        tokens = tokenize_sql("SELECT title FROM movies WHERE year >= 1990")
        kinds = [t.kind for t in tokens]
        assert kinds.count("keyword") >= 3
        assert any(t.kind == "op" and t.value == ">=" for t in tokens)

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize_sql("SELECT 'it''s'")
        assert tokens[-1].kind == "string"

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT @x")


class TestParser:
    def test_basic_select(self):
        statement = parse_sql("SELECT title, year FROM movies")
        assert statement.from_table == "movies"
        assert len(statement.items) == 2

    def test_star_select(self):
        assert parse_sql("SELECT * FROM movies").items[0].star is True

    def test_where_and_order_limit(self):
        statement = parse_sql(
            "SELECT title FROM movies WHERE year > 1980 AND score >= 0.5 "
            "ORDER BY score DESC, title LIMIT 3 OFFSET 1")
        assert statement.where is not None
        assert statement.order_by == [("score", True), ("title", False)]
        assert statement.limit == 3 and statement.offset == 1

    def test_join_clause(self):
        statement = parse_sql(
            "SELECT title FROM movies JOIN plots ON movies.movie_id = plots.movie_id")
        assert statement.joins[0].table == "plots"
        assert statement.joins[0].left_key == "movie_id"

    def test_left_join(self):
        statement = parse_sql(
            "SELECT title FROM movies LEFT JOIN plots ON movie_id = movie_id")
        assert statement.joins[0].how == "left"

    def test_aggregates_and_group_by(self):
        statement = parse_sql("SELECT genre, count(*) AS n, avg(score) FROM movies GROUP BY genre")
        aggregates = [item.aggregate for item in statement.items if item.aggregate]
        assert len(aggregates) == 2
        assert statement.group_by == ["genre"]

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT title")

    def test_trailing_tokens_raise(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT title FROM movies garbage garbage")

    def test_empty_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("   ")


class TestExecution:
    def test_filter_order_limit(self, small_catalog):
        result = execute_sql(
            "SELECT title, year FROM movies WHERE year > 1980 ORDER BY score DESC LIMIT 2",
            small_catalog)
        assert [r["title"] for r in result] == ["Guilty by Suspicion", "Clean and Sober"]

    def test_join_execution(self, small_catalog):
        result = execute_sql(
            "SELECT title, plot FROM movies JOIN plots ON movies.movie_id = plots.movie_id "
            "ORDER BY title", small_catalog)
        assert len(result) == 3
        assert result[0]["plot"]

    def test_left_join_execution(self, small_catalog):
        result = execute_sql(
            "SELECT title, plot FROM movies LEFT JOIN plots ON movie_id = movie_id", small_catalog)
        assert len(result) == 4
        missing = [r for r in result if r["title"] == "Quiet Days"][0]
        assert missing["plot"] is None

    def test_group_by_execution(self, small_catalog):
        result = execute_sql("SELECT year, count(*) AS n FROM movies GROUP BY year ORDER BY year",
                             small_catalog)
        assert [r["year"] for r in result] == [1950, 1988, 1991, 2003]
        assert all(r["n"] == 1 for r in result)

    def test_global_aggregate(self, small_catalog):
        result = execute_sql("SELECT count(*) AS n, avg(score) AS s FROM movies", small_catalog)
        assert result[0]["n"] == 4
        assert result[0]["s"] == pytest.approx((0.99 + 0.97 + 0.2) / 3)

    def test_like_and_in(self, small_catalog):
        like = execute_sql("SELECT title FROM movies WHERE title LIKE '%suspicion%'", small_catalog)
        assert len(like) == 1
        in_list = execute_sql("SELECT title FROM movies WHERE year IN (1988, 1950)", small_catalog)
        assert len(in_list) == 2

    def test_is_null(self, small_catalog):
        result = execute_sql("SELECT title FROM movies WHERE score IS NULL", small_catalog)
        assert [r["title"] for r in result] == ["Quiet Days"]

    def test_computed_column_with_alias(self, small_catalog):
        result = execute_sql("SELECT title, score * 100 AS pct FROM movies "
                             "WHERE score IS NOT NULL ORDER BY pct DESC", small_catalog)
        assert result[0]["pct"] == pytest.approx(99.0)
        assert result.column_names() == ["title", "pct"]

    def test_distinct(self, small_catalog):
        result = execute_sql("SELECT DISTINCT year FROM movies WHERE year > 1900", small_catalog)
        assert len(result) == 4

    def test_order_by_unselected_column(self, small_catalog):
        result = execute_sql("SELECT title FROM movies ORDER BY year", small_catalog)
        assert result.column_names() == ["title"]
        assert result[0]["title"] == "Old Film"

    def test_result_name_override(self, small_catalog):
        result = execute_sql("SELECT title FROM movies", small_catalog, result_name="renamed")
        assert result.name == "renamed"

    def test_scalar_function_in_select(self, small_catalog):
        result = execute_sql("SELECT upper(title) AS shout FROM movies ORDER BY shout LIMIT 1",
                             small_catalog)
        assert result[0]["shout"] == "CLEAN AND SOBER"

"""Unit tests for repro.utils (seeding, text helpers, timer)."""

import time

import pytest

from repro.utils.seed import SeededRNG, stable_hash
from repro.utils.text import (
    content_words,
    estimate_tokens,
    join_names,
    normalize,
    sentences,
    snake_case,
    tokenize,
    truncate,
)
from repro.utils.timer import Timer


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_differs_for_different_inputs(self):
        assert stable_hash("a") != stable_hash("b")

    def test_respects_bit_width(self):
        assert stable_hash("anything", bits=16) < (1 << 16)


class TestSeededRNG:
    def test_same_seed_same_sequence(self):
        a = SeededRNG("seed")
        b = SeededRNG("seed")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fork_is_deterministic_and_distinct(self):
        base = SeededRNG("seed")
        fork_a = base.fork("x")
        fork_b = SeededRNG("seed").fork("x")
        fork_c = base.fork("y")
        assert fork_a.random() == fork_b.random()
        assert fork_a.seed != fork_c.seed

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRNG(1).choice([])

    def test_sample_caps_at_population(self):
        assert sorted(SeededRNG(1).sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_randint_bounds(self):
        rng = SeededRNG(3)
        values = [rng.randint(2, 4) for _ in range(50)]
        assert set(values) <= {2, 3, 4}

    def test_chance_extremes(self):
        rng = SeededRNG(5)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_shuffle_returns_permutation(self):
        rng = SeededRNG(9)
        items = list(range(10))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched


class TestTextHelpers:
    def test_tokenize_strips_quotes(self):
        assert tokenize("the poster should be 'boring'")[-1] == "boring"

    def test_tokenize_keeps_inner_apostrophe(self):
        assert "don't" in tokenize("don't stop")

    def test_content_words_drop_stopwords(self):
        words = content_words("the man with the gun is here")
        assert "the" not in words and "gun" in words

    def test_normalize_collapses_whitespace(self):
        assert normalize("  Hello   World  ") == "hello world"

    def test_truncate_short_text_unchanged(self):
        assert truncate("short", 10) == "short"

    def test_truncate_long_text(self):
        result = truncate("x" * 50, 10)
        assert len(result) == 10 and result.endswith("...")

    def test_sentences_split(self):
        assert len(sentences("One. Two! Three?")) == 3

    def test_snake_case(self):
        assert snake_case("Classify Boring Posters!") == "classify_boring_posters"

    def test_join_names(self):
        assert join_names(["a"]) == "a"
        assert join_names(["a", "b", "c"]) == "a, b and c"
        assert join_names([]) == ""

    def test_estimate_tokens_floor(self):
        assert estimate_tokens("") == 0
        assert estimate_tokens("hi") == 1
        assert estimate_tokens("x" * 400) == 100


class TestTimer:
    def test_context_manager_records_elapsed(self):
        with Timer() as timer:
            time.sleep(0.001)
        assert timer.elapsed > 0.0
        assert not timer.running

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running(self):
        timer = Timer()
        timer.start()
        assert timer.running
        assert timer.elapsed >= 0.0
        timer.stop()

"""Tests for the SQL+UDF and black-box LLM baselines."""

import pytest

from repro.baselines.blackbox_llm import BlackBoxLLMBaseline
from repro.baselines.sql_udf import SQLUDFBaseline
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_QUERY,
    ranking_accuracy,
)
from repro.models.base import ModelSuite


@pytest.fixture()
def baseline_models():
    return ModelSuite.create(seed=21)


class TestSQLUDFBaseline:
    def test_flagship_pipeline_matches_ground_truth(self, corpus, baseline_models):
        result = SQLUDFBaseline(baseline_models).flagship_query(corpus)
        expected = [m.title for m in corpus.ground_truth_ranking()]
        assert result.titles()[:2] == expected[:2]
        assert result.manual_operations >= 5
        assert result.tokens > 0
        # Only boring-poster films survive the manual filter.
        boring = corpus.ground_truth_boring()
        ids = {corpus.by_title(t).movie_id for t in result.titles()}
        # The VLM-based boring classification is noisy, so allow one slip.
        misclassified = [movie_id for movie_id in ids if not boring[movie_id]]
        assert len(misclassified) <= 1

    def test_boring_posters_pipeline(self, corpus, baseline_models):
        result = SQLUDFBaseline(baseline_models).boring_posters(corpus)
        assert "Guilty by Suspicion" in result.titles()
        assert "Midnight Circuit" not in result.titles()

    def test_rank_by_excitement_pipeline(self, corpus, baseline_models):
        result = SQLUDFBaseline(baseline_models).rank_by_excitement(corpus)
        assert len(result.table) == len(corpus)
        top = result.titles()[:5]
        assert "Guilty by Suspicion" in top

    def test_custom_weights_and_keywords(self, corpus, baseline_models):
        result = SQLUDFBaseline(baseline_models).flagship_query(
            corpus, excitement_weight=1.0, recency_weight=0.0, keywords=["gun", "threat"])
        assert result.titles(), "pipeline should still produce results"


class TestBlackBoxBaseline:
    def test_answers_but_misses_boring_filter(self, corpus, baseline_models):
        baseline = BlackBoxLLMBaseline(baseline_models)
        result = baseline.answer(FLAGSHIP_QUERY, corpus,
                                 {"exciting": FLAGSHIP_CLARIFICATION})
        assert len(result.table) == len(corpus)  # nothing filtered out
        assert result.per_record_calls == len(corpus)
        assert result.tokens > 0
        assert baseline.explanation_depth() == 1
        assert "bypassed" in result.explanation

    def test_less_accurate_than_kathdb_on_flagship(self, corpus, baseline_models, flagship_result):
        expected = [m.title for m in corpus.ground_truth_ranking()]
        blackbox = BlackBoxLLMBaseline(baseline_models).answer(FLAGSHIP_QUERY, corpus)
        kathdb_accuracy = ranking_accuracy(flagship_result.titles(), expected, top_k=3)
        blackbox_accuracy = ranking_accuracy(blackbox.titles(), expected, top_k=3)
        assert kathdb_accuracy > blackbox_accuracy

    def test_costs_more_tokens_per_query_than_kathdb_execution(self, corpus, baseline_models,
                                                               flagship_result):
        blackbox = BlackBoxLLMBaseline(baseline_models).answer(FLAGSHIP_QUERY, corpus)
        assert blackbox.tokens > flagship_result.total_tokens

    def test_year_filter_handling(self, corpus, baseline_models):
        result = BlackBoxLLMBaseline(baseline_models).answer(
            "List films released after 2000 whose plots are exciting.", corpus)
        years = [row["year"] for row in result.table]
        assert all(year > 2000 for year in years)

    def test_calm_query(self, corpus, baseline_models):
        result = BlackBoxLLMBaseline(baseline_models).answer(
            "Show films with calm, quiet plots.", corpus)
        assert result.titles(), "calm query should still rank movies"

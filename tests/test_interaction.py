"""Unit tests for interaction channels, transcripts, and user agents."""

import pytest

from repro.errors import InteractionError
from repro.interaction.channel import Interaction, InteractionChannel, InteractionKind, Transcript
from repro.interaction.user import ScriptedUser, SilentUser, UserAgent


class TestTranscript:
    def test_add_and_filter_by_kind(self):
        transcript = Transcript()
        transcript.add(Interaction(InteractionKind.CLARIFICATION, "q?", "a"))
        transcript.add(Interaction(InteractionKind.NOTICE, "fyi", None))
        assert len(transcript) == 2
        assert len(transcript.of_kind(InteractionKind.CLARIFICATION)) == 1

    def test_user_turns_counts_only_replies(self):
        transcript = Transcript()
        transcript.add(Interaction(InteractionKind.CLARIFICATION, "q?", "a"))
        transcript.add(Interaction(InteractionKind.SKETCH_REVIEW, "sketch", ""))
        transcript.add(Interaction(InteractionKind.NOTICE, "fyi", None))
        assert transcript.user_turns() == 1

    def test_describe(self):
        transcript = Transcript()
        assert transcript.describe() == "(no interactions)"
        transcript.add(Interaction(InteractionKind.CLARIFICATION, "q?", "a"))
        assert "q?" in transcript.describe()


class TestUserAgents:
    def test_base_user_defaults(self):
        user = UserAgent()
        assert user.answer_clarification("q", "term") == ""
        assert user.review_sketch("sketch", 1) == "OK"
        assert user.resolve_anomaly("m", ["accept", "adjust"]) == "accept"

    def test_silent_user(self):
        user = SilentUser()
        assert user.review_sketch("anything", 2) == "OK"

    def test_scripted_user_clarifications(self):
        user = ScriptedUser({"exciting": "uncommon scenes"})
        assert user.answer_clarification("What does 'exciting' mean?", "exciting") == \
            "uncommon scenes"
        assert user.answer_clarification("What does 'boring' mean?", "boring") == ""

    def test_scripted_user_corrections_run_out(self):
        user = ScriptedUser(corrections=["add recency", "also filter by year"])
        assert user.review_sketch("v1", 1) == "add recency"
        assert user.review_sketch("v2", 2) == "also filter by year"
        assert user.review_sketch("v3", 3) == "OK"

    def test_scripted_user_anomaly_choice(self):
        user = ScriptedUser(anomaly_choice="rewrite")
        assert user.resolve_anomaly("m", ["accept", "adjust", "rewrite"]) == "rewrite"
        # Falls back to the first option when the preferred one is unavailable.
        assert user.resolve_anomaly("m", ["accept"]) == "accept"

    def test_scripted_user_collects_notices(self):
        user = ScriptedUser()
        user.notify("repaired classify_boring")
        assert user.notices == ["repaired classify_boring"]


class TestInteractionChannel:
    def test_requires_user_agent(self):
        with pytest.raises(InteractionError):
            InteractionChannel("not a user")

    def test_clarification_recorded(self):
        user = ScriptedUser({"exciting": "uncommon scenes"})
        channel = InteractionChannel(user)
        reply = channel.ask_clarification("What does 'exciting' mean?", "exciting")
        assert reply == "uncommon scenes"
        entry = channel.transcript.of_kind(InteractionKind.CLARIFICATION)[0]
        assert entry.metadata["term"] == "exciting"

    def test_sketch_review_recorded(self):
        user = ScriptedUser(corrections=["add recency"])
        channel = InteractionChannel(user)
        assert channel.review_sketch("1. do things", 1) == "add recency"
        assert channel.review_sketch("1. do things\n2. recency", 2) == "OK"
        reviews = channel.transcript.of_kind(InteractionKind.SKETCH_REVIEW)
        assert len(reviews) == 2
        assert reviews[0].metadata["version"] == 1

    def test_anomaly_escalation_recorded(self):
        channel = InteractionChannel(ScriptedUser(anomaly_choice="adjust"))
        decision = channel.escalate_anomaly("poster matched twice", ["accept", "adjust"])
        assert decision == "adjust"
        assert channel.transcript.of_kind(InteractionKind.SEMANTIC_ANOMALY)

    def test_notify_and_explanation_request(self):
        user = ScriptedUser()
        channel = InteractionChannel(user)
        channel.notify("self-repaired an operator")
        channel.record_explanation_request("explain tuple 5", "answer text")
        assert user.notices == ["self-repaired an operator"]
        assert len(channel.transcript) == 2

    def test_shared_transcript(self):
        transcript = Transcript()
        channel_a = InteractionChannel(SilentUser(), transcript)
        channel_b = InteractionChannel(SilentUser(), transcript)
        channel_a.notify("a")
        channel_b.notify("b")
        assert len(transcript) == 2

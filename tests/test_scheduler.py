"""Tests for the multi-tenant fair-share scheduler and the admission-aware API.

Covers the scheduler's fairness contract (deficit round-robin interleaving of
a hog and a light tenant), structured backpressure (shed + retry round-trips),
deadline semantics (expiry before dispatch and mid-execution, with no session
corruption and no leaked admission slots), the request API's defaults, and
the tenant-keyed quota ledger.
"""

import threading
import time

import pytest

from repro import (
    KathDBConfig,
    KathDBService,
    QueryOptions,
    QueryRequest,
)
from repro.errors import QueryCancelledError, SchedulerRejection
from repro.gateway.admission import AdmissionController
from repro.sched import CancelToken, FairShareScheduler
from repro.sched.cancel import activate, check_current_cancel
from repro.sched.scheduler import default_reservations

RECENT_QUERY = "List the films released after 2000."
BORING_QUERY = "Which films have a boring poster?"


def service_config(**overrides) -> KathDBConfig:
    defaults = dict(seed=7, monitor_enabled=False, explore_variants=False)
    defaults.update(overrides)
    return KathDBConfig(**defaults)


def fresh_service(corpus, **overrides) -> KathDBService:
    svc = KathDBService(service_config(**overrides))
    svc.load_corpus(corpus)
    return svc


def rows_of(response):
    assert response.ok, response.error
    return [dict(row) for row in response.result.final_table]


def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout_s
    while not predicate():
        assert time.perf_counter() < deadline, "condition never became true"
        time.sleep(0.005)


# ---------------------------------------------------------------------------
# CancelToken
# ---------------------------------------------------------------------------
class TestCancelToken:
    def test_deadline_expiry(self):
        token = CancelToken(deadline_s=0.0)
        assert token.expired
        assert token.cancelled
        assert token.reason == "deadline"
        with pytest.raises(QueryCancelledError):
            token.check()

    def test_live_token_is_a_noop(self):
        token = CancelToken(deadline_s=60.0)
        assert not token.cancelled
        assert token.reason == ""
        token.check()  # must not raise
        assert 0.0 < token.remaining_s() <= 60.0

    def test_explicit_cancel_first_reason_wins(self):
        token = CancelToken()
        assert token.remaining_s() is None
        token.cancel("caller-abort")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "caller-abort"

    def test_with_deadline_ms(self):
        assert CancelToken.with_deadline_ms(None).deadline_pc is None
        assert CancelToken.with_deadline_ms(50.0).deadline_pc is not None

    def test_ambient_token_via_contextvar(self):
        token = CancelToken()
        token.cancel("stop")
        check_current_cancel()  # nothing installed: no-op
        with activate(token):
            with pytest.raises(QueryCancelledError) as excinfo:
                check_current_cancel()
            assert excinfo.value.reason == "stop"
        check_current_cancel()  # uninstalled again


# ---------------------------------------------------------------------------
# FairShareScheduler (unit level)
# ---------------------------------------------------------------------------
class TestReservations:
    def test_default_split(self):
        assert default_reservations(4) == {
            "interactive": 2, "batch": 1, "background": 1}
        assert default_reservations(1) == {
            "interactive": 1, "batch": 0, "background": 0}
        # Interactive always keeps at least one slot.
        for workers in range(1, 12):
            split = default_reservations(workers)
            assert split["interactive"] >= 1
            assert sum(split.values()) <= workers

    def test_overcommitted_reservations_are_clamped(self):
        sched = FairShareScheduler(
            workers=2, reservations={"interactive": 2, "batch": 2, "background": 2})
        try:
            reserved = {cls: board.reserved for cls, board in sched.boards.items()}
            # Clamped from the lowest class backwards; guarantees never
            # exceed the pool.
            assert sum(reserved.values()) <= 2
            assert reserved["interactive"] == 2
            assert reserved["batch"] == 0
            assert reserved["background"] == 0
        finally:
            sched.shutdown()

    def test_unknown_class_is_rejected(self):
        sched = FairShareScheduler(workers=1)
        try:
            with pytest.raises(SchedulerRejection) as excinfo:
                sched.submit(lambda task: None, tenant="t", sched_class="realtime")
            assert excinfo.value.reason == "unknown-class"
        finally:
            sched.shutdown()


class TestFairness:
    def test_light_tenant_interleaves_with_hog(self):
        """DRR drains hog and light alternately even though the hog queued
        its whole backlog first — the light tenant's time-in-queue is bounded
        by the hog's *share*, not the hog's backlog."""
        sched = FairShareScheduler(workers=1)
        order = []
        lock = threading.Lock()
        gate = threading.Event()

        def blocker(task):
            gate.wait(10.0)

        def work(label):
            def runner(task):
                with lock:
                    order.append(label)
            return runner

        try:
            hold = sched.submit(blocker, tenant="hog")
            wait_until(lambda: sched.stats()["running"] == 1)
            futures = [sched.submit(work(f"hog{i}"), tenant="hog")
                       for i in range(6)]
            futures += [sched.submit(work(f"light{i}"), tenant="light")
                        for i in range(2)]
            gate.set()
            hold.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
            # Both light tasks drain within the first four slots: the round
            # robin alternates hog/light until the light queue empties.
            light_positions = [order.index("light0"), order.index("light1")]
            assert max(light_positions) <= 3, order
        finally:
            sched.shutdown()

    def test_tenant_weights_grant_extra_share(self):
        """A weight-3 tenant drains three tasks per round-robin visit."""
        sched = FairShareScheduler(workers=1, tenant_weights={"heavy": 3.0})
        order = []
        gate = threading.Event()

        def work(label):
            def runner(task):
                order.append(label)
            return runner

        try:
            hold = sched.submit(lambda task: gate.wait(10.0), tenant="x")
            wait_until(lambda: sched.stats()["running"] == 1)
            futures = [sched.submit(work(f"heavy{i}"), tenant="heavy")
                       for i in range(6)]
            futures += [sched.submit(work(f"plain{i}"), tenant="plain")
                        for i in range(6)]
            gate.set()
            hold.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
            # In the first 4 completions the heavy tenant holds a 3:1 edge.
            head = order[:4]
            assert sum(1 for label in head if label.startswith("heavy")) == 3, order
        finally:
            sched.shutdown()


class TestBackpressure:
    def test_full_queue_sheds_and_retry_succeeds(self):
        sched = FairShareScheduler(workers=1, queue_limit=2)
        gate = threading.Event()
        try:
            hold = sched.submit(lambda task: gate.wait(10.0), tenant="t")
            wait_until(lambda: sched.stats()["running"] == 1)
            queued = [sched.submit(lambda task: "ok", tenant="t") for _ in range(2)]
            with pytest.raises(SchedulerRejection) as excinfo:
                sched.submit(lambda task: "ok", tenant="t")
            rejection = excinfo.value
            assert rejection.reason == "backpressure"
            assert rejection.tenant_id == "t"
            assert rejection.sched_class == "interactive"
            assert rejection.queue_depth == 2
            stats = sched.stats()
            assert stats["shed"] == 1
            assert stats["tenants"]["t"]["shed"] == 1

            # Round-trip: drain the queue, then the retry is admitted.
            gate.set()
            hold.result(timeout=10)
            for future in queued:
                assert future.result(timeout=10) == "ok"
            assert sched.submit(lambda task: "retried", tenant="t"
                                ).result(timeout=10) == "retried"
        finally:
            sched.shutdown()

    def test_per_tenant_queues_isolate_backpressure(self):
        """One tenant's full queue must not shed another tenant's work."""
        sched = FairShareScheduler(workers=1, queue_limit=1)
        gate = threading.Event()
        try:
            hold = sched.submit(lambda task: gate.wait(10.0), tenant="hog")
            wait_until(lambda: sched.stats()["running"] == 1)
            sched.submit(lambda task: None, tenant="hog")
            with pytest.raises(SchedulerRejection):
                sched.submit(lambda task: None, tenant="hog")
            # The light tenant still has its own slot.
            light = sched.submit(lambda task: "light", tenant="light")
            gate.set()
            hold.result(timeout=10)
            assert light.result(timeout=10) == "light"
        finally:
            sched.shutdown()


class TestDeadlines:
    def test_lapsed_deadline_sheds_before_queueing(self):
        sched = FairShareScheduler(workers=1)
        ran = []
        try:
            future = sched.submit(
                lambda task: ran.append(True),
                tenant="t", token=CancelToken(deadline_s=0.0),
                shed_result=lambda task, reason: f"shed:{reason}")
            assert future.result(timeout=5) == "shed:deadline"
            assert ran == []
            stats = sched.stats()
            assert stats["expired"] == 1
            assert stats["tenants"]["t"]["expired"] == 1
        finally:
            sched.shutdown()

    def test_deadline_lapsing_in_queue_never_dispatches(self):
        """A task whose deadline expires while it waits is shed at dispatch
        time — the worker is not spent on dead work and no slot leaks."""
        sched = FairShareScheduler(workers=1)
        gate = threading.Event()
        ran = []
        try:
            hold = sched.submit(lambda task: gate.wait(10.0), tenant="t")
            wait_until(lambda: sched.stats()["running"] == 1)
            doomed = sched.submit(lambda task: ran.append(True), tenant="t",
                                  token=CancelToken(deadline_s=0.02))
            time.sleep(0.05)  # let the deadline lapse while queued
            gate.set()
            hold.result(timeout=10)
            with pytest.raises(SchedulerRejection) as excinfo:
                doomed.result(timeout=10)
            assert excinfo.value.reason == "deadline"
            assert ran == []
            wait_until(lambda: sched.stats()["running"] == 0)
            assert sched.stats()["expired"] == 1
        finally:
            sched.shutdown()

    def test_mid_execution_cancellation_via_ambient_token(self):
        """Running work observes the lapsed deadline cooperatively through
        the ambient token (the same channel the engine and gateway use)."""
        sched = FairShareScheduler(workers=1)

        def runner(task):
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                check_current_cancel()
                time.sleep(0.005)
            raise AssertionError("cancellation never observed")

        try:
            future = sched.submit(runner, tenant="t",
                                  token=CancelToken(deadline_s=0.05))
            with pytest.raises(QueryCancelledError) as excinfo:
                future.result(timeout=10)
            assert excinfo.value.reason == "deadline"
        finally:
            sched.shutdown()


class TestLifecycle:
    def test_shutdown_sheds_queued_work(self):
        sched = FairShareScheduler(workers=1)
        gate = threading.Event()
        hold = sched.submit(lambda task: gate.wait(10.0), tenant="t")
        wait_until(lambda: sched.stats()["running"] == 1)
        queued = sched.submit(lambda task: "never", tenant="t")
        stopper = threading.Thread(target=sched.shutdown)
        stopper.start()
        with pytest.raises(SchedulerRejection) as excinfo:
            queued.result(timeout=10)
        assert excinfo.value.reason == "shutdown"
        gate.set()
        hold.result(timeout=10)
        stopper.join(timeout=10)
        with pytest.raises(SchedulerRejection) as late:
            sched.submit(lambda task: None, tenant="t")
        assert late.value.reason == "shutdown"

    def test_run_inline_and_in_worker(self):
        sched = FairShareScheduler(workers=1)
        try:
            assert not sched.in_worker()
            seen = sched.submit(lambda task: sched.in_worker(), tenant="t"
                                ).result(timeout=10)
            assert seen is True
            assert sched.run_inline(lambda task: task.tenant, tenant="inline") \
                == "inline"
        finally:
            sched.shutdown()

    def test_ensure_workers_grows_but_never_shrinks(self):
        sched = FairShareScheduler(workers=1)
        try:
            sched.ensure_workers(3)
            assert sched.workers == 3
            sched.ensure_workers(2)
            assert sched.workers == 3
        finally:
            sched.shutdown()


# ---------------------------------------------------------------------------
# Tenant-keyed admission quota
# ---------------------------------------------------------------------------
class TestTenantQuota:
    def test_spend_is_shared_across_sessions_of_one_tenant(self):
        """Throwaway sessions cannot dodge the quota: the ledger is keyed by
        tenant id, and every session of that tenant draws it down."""
        admission = AdmissionController(session_token_quota=100)
        admission.charge("acme", 90)
        admission.charge("acme", 20)  # over quota now
        from repro.errors import SessionQuotaExceededError
        with pytest.raises(SessionQuotaExceededError):
            admission.precheck("acme")
        # Another tenant is unaffected.
        admission.precheck("bravo")
        assert admission.spent("acme") == 110

    def test_service_sessions_share_their_tenant_ledger(self, corpus):
        svc = fresh_service(corpus, session_token_quota=100_000)
        try:
            # Exhaust the tenant directly, then open two fresh sessions on it:
            # both are blocked, proving session ids no longer shard the ledger.
            svc.gateway.admission.charge("acme", 100_001)
            for _ in range(2):
                response = svc.submit(QueryRequest(
                    nl_query=RECENT_QUERY, tenant_id="acme",
                )).result(timeout=120)
                assert not response.ok
                assert "quota" in (response.error or "").lower()
            # A different tenant still runs.
            assert svc.submit(QueryRequest(
                nl_query=RECENT_QUERY, tenant_id="bravo",
            )).result(timeout=120).ok
        finally:
            svc.shutdown()

    def test_gateway_client_defaults_tenant_to_session(self, corpus):
        svc = fresh_service(corpus, session_token_quota=1000)
        try:
            client = svc.gateway.client("sess-9")
            assert client.tenant_id == "sess-9"
            scoped = svc.gateway.client("sess-9", tenant_id="acme")
            assert scoped.tenant_id == "acme"
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# Service integration: the admission-aware request API
# ---------------------------------------------------------------------------
class TestRequestApi:
    def test_sched_params_resolution(self):
        request = QueryRequest(nl_query="q")
        assert request.sched_params() == (None, "interactive", None)
        request = QueryRequest(
            nl_query="q", tenant_id="req-tenant", priority="batch",
            deadline_ms=100.0,
            options=QueryOptions(tenant_id="opt-tenant", priority="background",
                                 deadline_ms=5.0))
        # Request-level fields win over option-level ones.
        assert request.sched_params() == ("req-tenant", "batch", 100.0)
        request = QueryRequest(
            nl_query="q", options=QueryOptions(tenant_id="opt", priority="batch"))
        assert request.sched_params() == ("opt", "batch", None)

    def test_defaults_fill_scheduling_metadata(self, corpus):
        svc = fresh_service(corpus)
        try:
            response = svc.query(RECENT_QUERY)
            assert response.ok, response.error
            assert response.sched_class == "interactive"
            assert response.queue_ms >= 0.0
            assert response.shed_reason is None
            # Absent tenant => the request's own session id.
            assert response.scheduler_stats["tenant"] == response.session_id
        finally:
            svc.shutdown()

    def test_explicit_tenant_and_priority(self, corpus):
        svc = fresh_service(corpus)
        try:
            response = svc.submit(QueryRequest(
                nl_query=RECENT_QUERY, tenant_id="acme", priority="batch",
            )).result(timeout=120)
            assert response.ok, response.error
            assert response.sched_class == "batch"
            assert response.scheduler_stats["tenant"] == "acme"
        finally:
            svc.shutdown()

    def test_scheduler_off_keeps_legacy_path(self, corpus):
        baseline = fresh_service(corpus)
        flat = fresh_service(corpus, enable_scheduler=False)
        try:
            expected = rows_of(baseline.query(RECENT_QUERY))
            assert flat.scheduler is None
            assert flat.scheduler_stats() is None
            response = flat.query(RECENT_QUERY)
            assert rows_of(response) == expected
            # No scheduler: the scheduling metadata stays at its defaults.
            assert response.sched_class is None
            assert response.scheduler_stats is None
        finally:
            baseline.shutdown()
            flat.shutdown()

    def test_describe_and_stats_surface_scheduler(self, corpus):
        svc = fresh_service(corpus)
        try:
            svc.query(RECENT_QUERY)
            assert "fair-share scheduler" in svc.describe()
            stats = svc.scheduler_stats()
            assert stats["admitted"] >= 1
            assert set(stats["classes"]) == {"interactive", "batch", "background"}
        finally:
            svc.shutdown()


class TestServiceDeadlines:
    def test_lapsed_deadline_yields_structured_shed(self, corpus):
        """A dead-on-arrival deadline produces ok=False with shed_reason set,
        leaks no admission slot, and leaves the service fully usable."""
        svc = fresh_service(corpus)
        try:
            expected = rows_of(svc.query(RECENT_QUERY))
            shed = svc.submit(QueryRequest(
                nl_query=RECENT_QUERY, tenant_id="acme", deadline_ms=0.0,
            )).result(timeout=120)
            assert not shed.ok
            assert shed.shed_reason == "deadline"
            assert "shed" in shed.error
            assert shed.result is None
            assert shed.scheduler_stats["expired"] >= 1
            # No leaked slot: nothing still counts as running or queued …
            wait_until(lambda: svc.scheduler.stats()["running"] == 0)
            assert svc.scheduler.stats()["queued"] == 0
            # … and the same query still runs, row-identical.
            assert rows_of(svc.query(RECENT_QUERY)) == expected
        finally:
            svc.shutdown()

    def test_mid_execution_deadline_cancels_without_corruption(self, corpus):
        """A deadline that lapses while the query is executing cancels it at
        the next operator/gateway boundary; the session and service state
        stay intact (the retry is row-identical to an untouched run)."""
        baseline = fresh_service(corpus)
        svc = fresh_service(corpus)
        try:
            expected = rows_of(baseline.query(BORING_QUERY))
            # The first, uncached run of this query costs ~100 ms of codegen
            # and model calls, so a 10 ms deadline reliably lapses in flight
            # (and at worst is shed pre-dispatch — also a structured shed).
            doomed = svc.submit(QueryRequest(
                nl_query=BORING_QUERY, tenant_id="acme", deadline_ms=10.0,
            )).result(timeout=120)
            assert not doomed.ok
            assert doomed.shed_reason == "deadline"
            wait_until(lambda: svc.scheduler.stats()["running"] == 0)
            # The interrupted session must not have corrupted shared state.
            assert rows_of(svc.query(BORING_QUERY)) == expected
        finally:
            baseline.shutdown()
            svc.shutdown()


class TestServiceBackpressure:
    def test_shed_response_and_retry_round_trip(self, corpus):
        svc = fresh_service(corpus, service_max_workers=1, sched_queue_limit=1)
        try:
            expected = rows_of(svc.query(RECENT_QUERY))  # also warms the plan
            gate = threading.Event()
            hold = svc.scheduler.submit(lambda task: gate.wait(10.0),
                                        tenant="hog")
            wait_until(lambda: svc.scheduler.stats()["running"] == 1)
            queued = svc.submit(QueryRequest(nl_query=RECENT_QUERY,
                                             tenant_id="hog"))
            shed = svc.submit(QueryRequest(nl_query=RECENT_QUERY,
                                           tenant_id="hog")).result(timeout=10)
            # The overflow request is shed, not blocked: structured response.
            assert not shed.ok
            assert shed.shed_reason == "backpressure"
            assert shed.sched_class == "interactive"
            assert shed.scheduler_stats["shed"] >= 1

            gate.set()
            hold.result(timeout=10)
            assert rows_of(queued.result(timeout=120)) == expected
            # Round-trip: once the queue drained, the retry is admitted.
            retry = svc.submit(QueryRequest(nl_query=RECENT_QUERY,
                                            tenant_id="hog")).result(timeout=120)
            assert rows_of(retry) == expected
        finally:
            svc.shutdown()

    def test_light_tenant_queue_time_bounded_under_hog(self, corpus):
        """Service-level fairness: a light tenant submitting *after* a hog's
        backlog still waits less than the hog's own tail."""
        svc = fresh_service(corpus, service_max_workers=1)
        try:
            svc.query(RECENT_QUERY)  # warm the prepared plan
            gate = threading.Event()
            hold = svc.scheduler.submit(lambda task: gate.wait(10.0),
                                        tenant="hog")
            wait_until(lambda: svc.scheduler.stats()["running"] == 1)
            hog = [svc.submit(QueryRequest(nl_query=RECENT_QUERY,
                                           tenant_id="hog"))
                   for _ in range(6)]
            light = [svc.submit(QueryRequest(nl_query=RECENT_QUERY,
                                             tenant_id="light"))
                     for _ in range(2)]
            gate.set()
            hold.result(timeout=10)
            hog_done = [f.result(timeout=120) for f in hog]
            light_done = [f.result(timeout=120) for f in light]
            assert all(r.ok for r in hog_done + light_done)
            # The light tenant enqueued last; FIFO would give it the worst
            # queue time, DRR dispatches it ahead of the hog's tail.
            assert max(r.queue_ms for r in light_done) \
                < max(r.queue_ms for r in hog_done)
        finally:
            svc.shutdown()


class TestBatchThroughScheduler:
    def test_batch_rows_identical_to_serial(self, corpus):
        svc = fresh_service(corpus, service_max_workers=4)
        try:
            expected = rows_of(svc.query(RECENT_QUERY))
            responses = svc.query_batch(
                [QueryRequest(nl_query=RECENT_QUERY, tenant_id=f"t{i % 2}")
                 for i in range(6)], jobs=3)
            assert len(responses) == 6
            for response in responses:
                assert rows_of(response) == expected
                assert response.sched_class == "interactive"
            stats = svc.scheduler_stats()
            assert stats["completed"] >= 6
        finally:
            svc.shutdown()

"""Integration tests for the KathDB facade (end-to-end behaviour of the system)."""

import pytest

from repro import KathDB, KathDBConfig, ScriptedUser, SilentUser, build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
    build_default_workload,
    ranking_accuracy,
    set_f1,
)
from repro.errors import KathDBError
from repro.interaction.channel import InteractionKind


class TestConfig:
    def test_invalid_lineage_level(self):
        with pytest.raises(KathDBError):
            KathDBConfig(lineage_level="everything")

    def test_invalid_error_rate(self):
        with pytest.raises(KathDBError):
            KathDBConfig(vlm_error_rate=2.0)

    def test_invalid_max_variants(self):
        with pytest.raises(KathDBError):
            KathDBConfig(max_variants=0)


class TestLoadCorpus:
    def test_population_report(self, loaded_db):
        report = loaded_db.population_report
        assert set(report.base_tables) == {"movie_table", "film_plot", "poster_images"}
        assert len(report.view_tables) == 9
        assert loaded_db.catalog.has_table("image_objects")
        assert loaded_db.catalog.has_table("text_entities")

    def test_catalog_description_for_agents(self, loaded_db):
        description = loaded_db.describe_catalog(kinds=["base"])
        assert "movie_table" in description and "image_objects" not in description


class TestFlagshipQuery:
    def test_figure6_top_two(self, flagship_result):
        assert flagship_result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]
        top = flagship_result.rows()[0]
        assert top["year"] == 1991
        assert top["boring_poster"] is True
        assert top["final_score"] > flagship_result.rows()[1]["final_score"]

    def test_sketch_versions_match_paper(self, flagship_result):
        assert flagship_result.sketch.version == 2
        assert len(flagship_result.sketch) == 11
        assert len(flagship_result.logical_plan) == 10

    def test_transcript_contains_both_interaction_modes(self, flagship_result):
        transcript = flagship_result.transcript
        assert transcript.of_kind(InteractionKind.CLARIFICATION)
        reviews = transcript.of_kind(InteractionKind.SKETCH_REVIEW)
        assert len(reviews) >= 2  # correction round plus the final OK
        assert any(review.user_reply and "recent" in review.user_reply for review in reviews)

    def test_lineage_and_registry_populated(self, loaded_db, flagship_result):
        assert flagship_result.lineage.summary()["total"] > 0
        versions = loaded_db.function_versions()
        assert versions.get("gen_excitement_score", 0) >= 1
        assert loaded_db.total_tokens() > 0

    def test_intent_weights(self, flagship_result):
        assert flagship_result.intent.score_weights == {"excitement_score": 0.7,
                                                        "recency_score": 0.3}

    def test_only_boring_posters_in_result(self, flagship_result, corpus):
        boring = corpus.ground_truth_boring()
        for row in flagship_result.final_table:
            movie = corpus.by_title(row["title"])
            # allow at most perception noise; the flagship run has none
            assert boring[movie.movie_id], f"{row['title']} should have a boring poster"


class TestOtherWorkloadQueries:
    @pytest.fixture(scope="class")
    def db(self, corpus):
        instance = KathDB(KathDBConfig(seed=3))
        instance.load_corpus(corpus)
        return instance

    def test_boring_poster_listing(self, db, corpus):
        workload = build_default_workload()
        query = workload.query("find_boring_posters")
        result = db.query(query.nl_query, user=SilentUser())
        predicted = result.titles()
        expected = query.expected_titles(corpus)
        assert set_f1(predicted, expected) >= 0.85

    def test_recent_exciting_listing(self, db, corpus):
        workload = build_default_workload()
        query = workload.query("recent_exciting")
        user = ScriptedUser(query.clarification_answers)
        result = db.query(query.nl_query, user=user)
        years = {corpus.by_title(t).year for t in result.titles() if corpus.by_title(t)}
        assert all(year > 2000 for year in years)
        expected = query.expected_titles(corpus)
        assert set_f1(result.titles(), expected) >= 0.6

    def test_rank_all_by_excitement(self, db, corpus):
        workload = build_default_workload()
        query = workload.query("rank_all_by_excitement")
        user = ScriptedUser(query.clarification_answers)
        result = db.query(query.nl_query, user=user)
        assert len(result.final_table) == len(corpus)
        accuracy = ranking_accuracy(result.titles(), query.expected_titles(corpus), top_k=3)
        assert accuracy >= 2 / 3

    def test_repeated_queries_accumulate_versions(self, db):
        before = sum(db.function_versions().values())
        db.query("Which films have a boring poster?", user=SilentUser())
        assert sum(db.function_versions().values()) > before


class TestConfigurationVariants:
    def test_workspace_persists_functions(self, corpus, tmp_path):
        db = KathDB(KathDBConfig(seed=1, workspace=tmp_path, explore_variants=False,
                                 monitor_enabled=False))
        db.load_corpus(corpus)
        db.query("Which films have a boring poster?", user=SilentUser())
        persisted = list(tmp_path.rglob("*.py.txt"))
        assert persisted, "generated function sources should be persisted to the workspace"
        metadata = list(tmp_path.rglob("*.json"))
        assert len(metadata) == len(persisted)

    def test_no_interaction_modes_still_answers(self, corpus):
        db = KathDB(KathDBConfig(seed=1, proactive_clarification=False,
                                 reactive_correction=False, explore_variants=False,
                                 monitor_enabled=False))
        db.load_corpus(corpus)
        result = db.query(FLAGSHIP_QUERY, user=ScriptedUser(
            {"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION]))
        # Without clarification or correction the sketch stays at v1 and the
        # recency preference never reaches the plan.
        assert result.sketch.version == 1
        assert "recency_score" not in result.final_table.column_names()

    def test_ask_before_query_raises(self):
        db = KathDB(KathDBConfig(seed=1))
        with pytest.raises(ValueError):
            db.ask("explain the pipeline")

    def test_fused_configuration_runs(self, corpus):
        db = KathDB(KathDBConfig(seed=1, enable_fusion=True, explore_variants=False,
                                 monitor_enabled=False))
        db.load_corpus(corpus)
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
        result = db.query(FLAGSHIP_QUERY, user=user)
        fused_records = [r for r in result.records if r.operator_name.startswith("fused_")]
        assert fused_records, "fusion should produce a fused operator"
        assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]

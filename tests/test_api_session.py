"""Tests for the layered Session/Service API.

Covers the concurrency contract of the redesign: session isolation (shared
catalog/lineage/lexicon stay read-only during queries), prepared-query cache
behaviour, batch determinism under worker threads, and the structured
request/response surface.
"""

import pytest

from repro import (
    KathDB,
    KathDBConfig,
    KathDBService,
    QueryOptions,
    QueryRequest,
    ScriptedUser,
    SilentUser,
    build_movie_corpus,
)
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.interaction.user import UserAgent

BORING_QUERY = "Which films have a boring poster?"
RECENT_QUERY = "List the films released after 2000."


def flagship_user() -> ScriptedUser:
    return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])


def service_config(**overrides) -> KathDBConfig:
    defaults = dict(seed=7, monitor_enabled=False, explore_variants=False)
    defaults.update(overrides)
    return KathDBConfig(**defaults)


@pytest.fixture(scope="module")
def service(corpus):
    svc = KathDBService(service_config())
    svc.load_corpus(corpus)
    yield svc
    svc.shutdown()


def fresh_service(corpus, **overrides) -> KathDBService:
    svc = KathDBService(service_config(**overrides))
    svc.load_corpus(corpus)
    return svc


def rows_of(response):
    assert response.ok, response.error
    return [dict(row) for row in response.result.final_table]


class TestSessionIsolation:
    def test_interleaved_sessions_match_solo_runs(self, corpus):
        # Reference: each session's query sequence runs alone on its own service.
        ref_a = fresh_service(corpus).session(name="a")
        expected_boring = rows_of(ref_a.query(BORING_QUERY))
        expected_recent = rows_of(ref_a.query(RECENT_QUERY))
        ref_b = fresh_service(corpus).session(name="b", user=flagship_user())
        expected_flagship = rows_of(ref_b.query(FLAGSHIP_QUERY))

        # Interleaved: the same two sequences take turns on one shared service.
        svc = fresh_service(corpus)
        a = svc.session(name="a")
        b = svc.session(name="b", user=flagship_user())
        got_boring = rows_of(a.query(BORING_QUERY))
        got_flagship = rows_of(b.query(FLAGSHIP_QUERY))
        got_recent = rows_of(a.query(RECENT_QUERY))

        assert got_boring == expected_boring
        assert got_flagship == expected_flagship
        assert got_recent == expected_recent

    def test_queries_leave_shared_state_untouched(self, corpus):
        svc = fresh_service(corpus)
        tables_before = set(svc.catalog.table_names())
        lineage_before = len(svc.lineage)
        concepts_before = set(svc.models.lexicon.concept_names())

        session = svc.session(user=flagship_user())
        response = session.query(FLAGSHIP_QUERY)
        assert response.ok

        # Catalog: no intermediate tables registered.
        assert set(svc.catalog.table_names()) == tables_before
        # Shared lineage store: execution recorded only into the session scope.
        assert len(svc.lineage) == lineage_before
        assert len(session.lineage) > 0
        # Shared lexicon: the clarification taught only the session's copy.
        assert set(svc.models.lexicon.concept_names()) == concepts_before
        assert "exciting" in session.models.lexicon.concept_names()
        # The session exposes its private intermediates namespace instead.
        assert "films_with_final_score" in session.intermediates()

    def test_scoped_lineage_traces_to_corpus_sources(self, corpus):
        svc = fresh_service(corpus)
        session = svc.session(user=flagship_user())
        result = session.query(FLAGSHIP_QUERY).result
        lid = result.rows()[0]["lid"]
        # The scoped store resolves the full derivation, down to the raw files
        # recorded in the *base* store at corpus-load time.
        ancestors = session.lineage.ancestors_of(lid)
        uris = [session.lineage.entries_for(a)[0].src_uri for a in ancestors]
        assert any(uri and "movie_table" in uri for uri in uris)
        # ...but the base store has never heard of the session's lids.
        assert not svc.lineage.has_lid(lid)

    def test_session_table_lids_persist_across_queries(self, corpus):
        svc = fresh_service(corpus)
        session = svc.session()
        session.query(BORING_QUERY)
        # The lid map kept the first query's intermediates, so a later query
        # referencing them would record real parents, not NULLs.
        context = session.execution_context()
        assert "films_with_boring_flag" in context.intermediates
        assert context.table_lids.get("films_with_boring_flag") is not None

    def test_facade_and_session_lineage_scopes_stay_disjoint(self, corpus):
        # The legacy facade allocates from the shared base store; a session
        # created *before* a facade query must not see the facade's edges
        # even though both ranges overlap numerically.
        db = KathDB(service_config())
        db.load_corpus(corpus)
        session = db.session()
        db.query(BORING_QUERY, user=SilentUser())   # base store advances
        base_entries_before_use = len(db.lineage)
        response = session.query(RECENT_QUERY)       # scope rebases past the facade
        # Session lids never collide with base lids (including the facade's).
        local_lids = {e.lid for e in session.lineage.entries}
        base_lids = {e.lid for e in db.lineage.entries}
        assert local_lids and local_lids.isdisjoint(base_lids)
        # The export is exactly: base-as-of-first-use plus the session's edges.
        exported = session.lineage.to_table()
        assert len(exported) == base_entries_before_use + len(session.lineage)
        # The session still resolves its own lids and their ancestry.
        top_lid = response.result.rows()[0]["lid"]
        assert session.lineage.producing_function(top_lid) is not None
        assert session.lineage.ancestors_of(top_lid)

    def test_session_created_before_load_corpus_still_traces(self, corpus):
        # A session built before the corpus was loaded must not mask or
        # collide with the lineage recorded during population.
        svc = KathDBService(service_config())
        early = svc.session()
        svc.load_corpus(corpus)
        response = early.query(BORING_QUERY)
        assert response.ok
        top_lid = response.result.rows()[0]["lid"]
        ancestors = early.lineage.ancestors_of(top_lid)
        uris = [early.lineage.entries_for(a)[0].src_uri for a in ancestors]
        assert any(uri and "movie_table" in uri for uri in uris)
        local_lids = {e.lid for e in early.lineage.entries}
        assert local_lids.isdisjoint({e.lid for e in svc.lineage.entries})

    def test_session_token_ledgers_are_private(self, corpus):
        svc = fresh_service(corpus)
        shared_before = svc.total_tokens()
        session = svc.session()
        response = session.query(BORING_QUERY)
        assert response.total_tokens > 0
        assert session.total_tokens() == response.total_tokens
        assert svc.total_tokens() == shared_before


class TestPreparedQueries:
    def test_second_identical_query_hits_the_cache(self, corpus):
        svc = fresh_service(corpus)
        first = svc.query(BORING_QUERY)
        second = svc.query(BORING_QUERY)
        assert not first.prepared_hit and first.prepare_tokens > 0
        assert second.prepared_hit and second.prepare_tokens == 0
        assert rows_of(first) == rows_of(second)
        stats = svc.prepared_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_normalization_shares_plans_across_spellings(self, corpus):
        svc = fresh_service(corpus)
        svc.query(BORING_QUERY)
        variant = svc.query("  which FILMS have a  boring poster ")
        assert variant.prepared_hit

    def test_different_user_scripts_do_not_share_plans(self, corpus):
        svc = fresh_service(corpus)
        exciting = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION})
        awards = ScriptedUser({"exciting": "films that won many awards"})
        first = svc.query("Rank every film by how exciting its plot is.", user=exciting)
        second = svc.query("Rank every film by how exciting its plot is.", user=awards)
        assert first.ok and second.ok
        assert not second.prepared_hit  # different clarification -> different key

    def test_partially_consumed_scripted_user_gets_its_own_key(self):
        # A ScriptedUser that already spent a correction steers parsing
        # differently from a fresh one, so their fingerprints must differ.
        fresh = flagship_user()
        consumed = flagship_user()
        consumed.review_sketch("(sketch v1)", 1)
        assert fresh.interaction_fingerprint() != consumed.interaction_fingerprint()
        # Once fully drained it matches a user scripted with no corrections.
        drained = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION})
        assert consumed.interaction_fingerprint() == drained.interaction_fingerprint()

    def test_custom_agents_are_uncacheable_by_default(self):
        class HomegrownUser(UserAgent):
            pass  # forgets to define interaction_fingerprint

        assert HomegrownUser().interaction_fingerprint() is None
        assert SilentUser().interaction_fingerprint() == "silent"

    def test_failed_compiles_release_their_key_locks(self):
        svc = KathDBService(service_config())  # no corpus -> compiles fail
        for _ in range(3):
            assert not svc.query(BORING_QUERY).ok
        assert svc.prepared._key_locks == {}

    def test_unfingerprintable_user_is_uncacheable(self, corpus):
        class OpaqueUser(UserAgent):
            def interaction_fingerprint(self):
                return None

        svc = fresh_service(corpus)
        response = svc.query(BORING_QUERY, user=OpaqueUser())
        assert response.ok and not response.prepared_hit
        assert svc.prepared_stats()["uncacheable"] == 1

    def test_use_prepared_false_bypasses_the_cache(self, corpus):
        svc = fresh_service(corpus)
        svc.query(BORING_QUERY)
        bypass = svc.query(BORING_QUERY, options=QueryOptions(use_prepared=False))
        assert not bypass.prepared_hit and bypass.prepare_tokens > 0

    def test_cached_plans_adopt_runtime_repairs(self, corpus):
        # A data-dependent fault repaired during one execution must be folded
        # back into the cached plan — later hits start from the repaired
        # version instead of re-paying the repair (and re-registering a new
        # registry version) on every request.
        from repro.fao.codegen import FAULT_SYNTACTIC_FRAGILE
        svc = fresh_service(
            corpus,
            variant_overrides={"classify_boring": "scene_statistics"},
            fault_injection={"classify_boring": FAULT_SYNTACTIC_FRAGILE})
        # The fault only fires on an unsupported format beyond the optimizer's
        # profiling sample, so it surfaces at execution time (as in the
        # interactive_repair example).
        posters = svc.catalog.table("poster_images")
        victim = posters.rows[10]
        victim["image_uri"] = victim["image_uri"].replace(".png", ".heic")

        first = svc.query(BORING_QUERY)
        assert first.ok and first.result.repairs_performed() > 0
        versions_after_first = svc.registry.version_count("classify_boring")
        second = svc.query(BORING_QUERY)
        assert second.ok and second.prepared_hit
        assert second.result.repairs_performed() == 0
        assert svc.registry.version_count("classify_boring") == versions_after_first
        assert rows_of(first) == rows_of(second)

    def test_reload_invalidates_prepared_plans(self, corpus):
        svc = fresh_service(corpus)
        svc.query(BORING_QUERY)
        assert len(svc.prepared) == 1
        svc.load_corpus(build_movie_corpus(size=8, seed=3))
        assert len(svc.prepared) == 0
        fresh = svc.query(BORING_QUERY)
        assert not fresh.prepared_hit

    def test_eviction_under_concurrent_batches(self, corpus):
        # A capacity-1 cache thrashes when two distinct queries alternate
        # concurrently: correctness (rows identical to serial) must survive
        # the churn, and the evictions must be accounted.
        svc = fresh_service(corpus, prepared_cache_size=1)
        workload = [BORING_QUERY, RECENT_QUERY] * 4
        serial_reference = fresh_service(corpus)
        expected = {q: rows_of(serial_reference.query(q))
                    for q in (BORING_QUERY, RECENT_QUERY)}

        responses = svc.query_batch(
            [QueryRequest(nl_query=q, user=SilentUser()) for q in workload], jobs=4)
        assert all(r.ok for r in responses)
        for query, response in zip(workload, responses):
            assert rows_of(response) == expected[query]
        stats = svc.prepared_stats()
        assert len(svc.prepared) == 1
        assert stats["evictions"] > 0
        assert stats["hits"] + stats["misses"] == len(workload)
        # Thrashing must not leak per-key build locks.
        assert svc.prepared._key_locks == {}

    def test_fingerprint_invalidation_under_concurrent_batches(self, corpus):
        # A catalog mutation between batches shifts every prepared key; the
        # next *concurrent* batch must compile exactly once behind the
        # per-key lock and share the new plan among the other workers.
        from repro.relational.table import Table
        svc = fresh_service(corpus)
        first = svc.query_batch([BORING_QUERY] * 4, jobs=4)
        assert all(r.ok for r in first)
        before = svc.prepared_stats()
        assert before["misses"] == 1 and before["hits"] == 3

        # Direct catalog mutation (legacy-style): the fingerprint is computed
        # fresh per request, so old plans become unreachable immediately.
        svc.catalog.register(Table.from_rows(
            "scratch_notes", [{"note_id": 1, "text": "hello"}]))
        second = svc.query_batch([BORING_QUERY] * 4, jobs=4)
        assert all(r.ok for r in second)
        after = svc.prepared_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 3
        # Both keys (old and new fingerprint) now live in the cache.
        assert len(svc.prepared) == 2
        for a, b in zip(first, second):
            assert rows_of(a) == rows_of(b)


class TestBatchExecution:
    WORKLOAD = [BORING_QUERY, RECENT_QUERY, BORING_QUERY, RECENT_QUERY,
                BORING_QUERY, RECENT_QUERY, BORING_QUERY, RECENT_QUERY]

    def _requests(self):
        return [QueryRequest(nl_query=q, user=SilentUser()) for q in self.WORKLOAD]

    def test_query_batch_with_four_workers_matches_serial(self, corpus):
        svc = fresh_service(corpus)
        serial = svc.query_batch(self._requests(), jobs=1)
        parallel = svc.query_batch(self._requests(), jobs=4)
        assert all(r.ok for r in serial) and all(r.ok for r in parallel)
        for s, p in zip(serial, parallel):
            assert rows_of(s) == rows_of(p)

    def test_batch_includes_interactive_scripted_queries(self, corpus):
        svc = fresh_service(corpus)
        requests = [QueryRequest(nl_query=FLAGSHIP_QUERY, user=flagship_user())
                    for _ in range(4)]
        serial = svc.query_batch(requests, jobs=1)
        parallel = svc.query_batch(
            [QueryRequest(nl_query=FLAGSHIP_QUERY, user=flagship_user())
             for _ in range(4)], jobs=4)
        reference = rows_of(serial[0])
        assert reference[0]["title"] == "Guilty by Suspicion"
        for response in serial + parallel:
            assert rows_of(response) == reference

    def test_shared_user_convenience_is_cloned_per_request(self, corpus):
        # Passing one stateful user for a whole batch must not race its
        # correction cursor: every request gets an equivalent private copy.
        svc = fresh_service(corpus)
        shared = flagship_user()
        responses = svc.query_batch([FLAGSHIP_QUERY] * 4, user=shared, jobs=4)
        assert all(r.ok for r in responses)
        reference = rows_of(responses[0])
        assert all(rows_of(r) == reference for r in responses)
        # The caller's own agent was never consumed.
        assert shared._correction_index == 0
        # The same holds when the shared agent is embedded in the requests.
        embedded = flagship_user()
        requests = [QueryRequest(nl_query=FLAGSHIP_QUERY, user=embedded)
                    for _ in range(4)]
        responses = svc.query_batch(requests, jobs=4)
        assert all(rows_of(r) == reference for r in responses)
        assert embedded._correction_index == 0

    def test_diverged_session_lexicons_do_not_share_plans(self, corpus):
        svc = fresh_service(corpus)
        taught = svc.session(user=flagship_user())
        taught.query(FLAGSHIP_QUERY)      # clarification extends taught's lexicon
        follow_up = taught.query(BORING_QUERY)
        pristine = svc.session()
        fresh = pristine.query(BORING_QUERY)
        # The diverged session compiled its own plan; the pristine one did not
        # inherit a plan built under the taught lexicon.
        assert not follow_up.prepared_hit and not fresh.prepared_hit
        assert rows_of(follow_up) and rows_of(fresh)

    def test_submit_and_gather(self, corpus):
        svc = fresh_service(corpus)
        futures = [svc.submit(q) for q in (BORING_QUERY, RECENT_QUERY)]
        responses = svc.gather(futures)
        assert [len(r.result.final_table) for r in responses] == \
            [len(rows_of(svc.query(q))) for q in (BORING_QUERY, RECENT_QUERY)]
        svc.shutdown()

    def test_failures_are_captured_not_raised(self):
        svc = KathDBService(service_config())  # no corpus loaded
        response = svc.query(BORING_QUERY)
        assert not response.ok
        assert "PlanVerificationError" in response.error
        with pytest.raises(RuntimeError):
            response.raise_for_error()


class TestRequestOptions:
    def test_function_version_pins(self, corpus):
        svc = fresh_service(corpus, explore_variants=True)
        first = svc.query(FLAGSHIP_QUERY, user=flagship_user())
        assert first.ok
        versions = svc.registry.versions("gen_excitement_score")
        keyword = next(f for f in versions if f.variant == "keyword_overlap")
        pinned = svc.query(
            FLAGSHIP_QUERY, user=flagship_user(),
            options=QueryOptions(function_versions={"gen_excitement_score": keyword.version}))
        record = pinned.result.record_for("gen_excitement_score")
        assert record.function_variant == "keyword_overlap"
        # Pins are applied per execution, so the pinned request shares the
        # compiled artifact instead of recompiling...
        assert pinned.prepared_hit and pinned.prepare_tokens == 0
        # ...and never leaks back into the cached plan.
        replay = svc.query(FLAGSHIP_QUERY, user=flagship_user())
        assert replay.result.record_for("gen_excitement_score").function_variant != \
            "keyword_overlap"

    def test_explanations_attached_on_request(self, service):
        response = service.query(BORING_QUERY,
                                 options=QueryOptions(explain=True, explain_top=True))
        assert response.explanation and response.explanation.startswith("How KathDB answered")
        assert response.top_explanation and "derivation chain" in response.top_explanation

    def test_response_describe_mentions_cache_state(self, service):
        response = service.query(RECENT_QUERY)
        text = response.describe()
        assert "rows" in text and "tokens" in text


class TestFacadeSessionBridge:
    def test_kathdb_sessions_share_the_loaded_corpus(self, corpus):
        db = KathDB(service_config())
        db.load_corpus(corpus)
        session = db.session()
        response = session.query(BORING_QUERY)
        legacy = db.query(BORING_QUERY, user=SilentUser())
        assert rows_of(response) == [dict(r) for r in legacy.final_table]
        # The isolated session never moved the facade's ledger or lineage.
        assert session.total_tokens() > 0
        assert not db.catalog.has_table("films_with_boring_flag")

    def test_default_session_is_exposed(self, corpus):
        db = KathDB(service_config())
        db.load_corpus(corpus)
        db.query(BORING_QUERY, user=SilentUser())
        assert db.default_session.last_result is db.last_result

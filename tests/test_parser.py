"""Unit tests for the query parser: sketches, NL parsing, logical plans, verification."""

import json

import pytest

from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.errors import PlanError
from repro.interaction.channel import InteractionChannel, InteractionKind
from repro.interaction.user import ScriptedUser, SilentUser
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.parser.nl_parser import NLParser
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.parser.plan_verifier import CatalogToolUser, PlanVerifier
from repro.parser.sketch import QuerySketch


@pytest.fixture()
def parser_models():
    return ModelSuite.create(seed=3)


@pytest.fixture()
def populated_catalog(corpus, parser_models):
    from repro.datamodel.lineage import LineageStore
    from repro.datamodel.views import ViewPopulator
    from repro.relational.catalog import Catalog

    catalog = Catalog()
    ViewPopulator(parser_models, catalog, LineageStore()).load_corpus(corpus)
    return catalog


class TestQuerySketch:
    def test_add_step_numbers_sequentially(self):
        sketch = QuerySketch(nl_query="q")
        sketch.add_step("first", purpose="a")
        sketch.add_step("second", purpose="b")
        assert [s.index for s in sketch] == [1, 2]
        assert sketch.step_by_purpose("b").description == "second"
        assert sketch.step_by_purpose("zzz") is None

    def test_describe_contains_all_steps(self):
        sketch = QuerySketch(nl_query="q", version=2)
        sketch.add_step("only step")
        text = sketch.describe()
        assert "v2" in text and "1. only step" in text

    def test_revised_bumps_version_and_clears_steps(self):
        sketch = QuerySketch(nl_query="q", version=1, clarifications={"a": "b"})
        sketch.add_step("x")
        revised = sketch.revised()
        assert revised.version == 2 and len(revised) == 0
        assert revised.clarifications == {"a": "b"}


class TestNLParser:
    def _channel(self, corrections=None):
        return InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                               corrections or []))

    def test_flagship_sketch_step_counts_match_paper(self, parser_models):
        parser = NLParser(parser_models)
        outcome = parser.parse(FLAGSHIP_QUERY, self._channel([FLAGSHIP_CORRECTION]))
        assert len(outcome.sketch_history[0]) == 8
        assert len(outcome.sketch) == 11
        assert outcome.sketch.version == 2
        assert outcome.correction_rounds == 1
        assert outcome.clarification_rounds == 1

    def test_clarification_recorded_in_transcript(self, parser_models):
        channel = self._channel()
        NLParser(parser_models).parse(FLAGSHIP_QUERY, channel)
        clarifications = channel.transcript.of_kind(InteractionKind.CLARIFICATION)
        assert clarifications
        assert "exciting" in clarifications[0].system_message

    def test_proactive_disabled_skips_clarification(self, parser_models):
        channel = self._channel()
        parser = NLParser(parser_models, proactive=False)
        outcome = parser.parse(FLAGSHIP_QUERY, channel)
        assert outcome.clarification_rounds == 0
        assert not channel.transcript.of_kind(InteractionKind.CLARIFICATION)

    def test_reactive_disabled_ignores_corrections(self, parser_models):
        parser = NLParser(parser_models, reactive=False)
        outcome = parser.parse(FLAGSHIP_QUERY, self._channel([FLAGSHIP_CORRECTION]))
        assert outcome.correction_rounds == 0
        assert outcome.intent.include_recency is False

    def test_silent_user_gets_default_interpretation(self, parser_models):
        channel = InteractionChannel(SilentUser())
        outcome = NLParser(parser_models).parse(FLAGSHIP_QUERY, channel)
        assert outcome.sketch.version == 1
        assert outcome.intent.semantic_scores  # defaults still produce a plan

    def test_correction_rounds_capped(self, parser_models):
        # A user who never says OK must not loop forever.
        endless = ScriptedUser(corrections=["more recency"] * 10)
        parser = NLParser(parser_models, max_correction_rounds=2)
        outcome = parser.parse(FLAGSHIP_QUERY, InteractionChannel(endless))
        assert outcome.correction_rounds == 2

    def test_sketch_mentions_keywords_and_boring(self, parser_models):
        outcome = NLParser(parser_models).parse(FLAGSHIP_QUERY,
                                                self._channel([FLAGSHIP_CORRECTION]))
        text = outcome.sketch.describe().lower()
        assert "keyword" in text and "boring" in text and "recency" in text


class TestLogicalPlanStructure:
    def test_duplicate_node_names_rejected(self):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="a", description="", inputs=[], output="t1"))
        with pytest.raises(PlanError):
            plan.add(LogicalPlanNode(name="a", description="", inputs=[], output="t2"))

    def test_validate_detects_unknown_inputs_and_duplicate_outputs(self):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="a", description="", inputs=["ghost"], output="t1"))
        plan.add(LogicalPlanNode(name="b", description="", inputs=["t1"], output="t1"))
        problems = plan.validate(["movie_table"])
        assert any("ghost" in p for p in problems)
        assert any("same output" in p for p in problems)

    def test_execution_order_topological(self):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="late", description="", inputs=["mid"], output="out"))
        plan.add(LogicalPlanNode(name="early", description="", inputs=["movie_table"],
                                 output="base"))
        plan.add(LogicalPlanNode(name="middle", description="", inputs=["base"], output="mid"))
        ordered = [n.name for n in plan.execution_order()]
        assert ordered.index("early") < ordered.index("middle") < ordered.index("late")

    def test_cycle_detection(self):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="a", description="", inputs=["b_out"], output="a_out"))
        plan.add(LogicalPlanNode(name="b", description="", inputs=["a_out"], output="b_out"))
        with pytest.raises(PlanError):
            plan.execution_order()

    def test_final_output_and_node_lookup(self):
        plan = LogicalPlan()
        with pytest.raises(PlanError):
            plan.final_output()
        plan.add(LogicalPlanNode(name="a", description="", inputs=[], output="t1"))
        assert plan.final_output() == "t1"
        assert plan.node("a").output == "t1"
        with pytest.raises(PlanError):
            plan.node("zzz")


class TestPlanGeneratorAndVerifier:
    def _plan(self, parser_models, populated_catalog, corrections=None):
        channel = InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                                  corrections or [FLAGSHIP_CORRECTION]))
        outcome = NLParser(parser_models).parse(FLAGSHIP_QUERY, channel)
        generator = LogicalPlanGenerator(parser_models, populated_catalog)
        return generator, outcome, generator.generate(outcome.sketch, outcome.intent)

    def test_flagship_plan_has_ten_nodes(self, parser_models, populated_catalog):
        _, _, plan = self._plan(parser_models, populated_catalog)
        assert len(plan) == 10
        names = [node.name for node in plan]
        for expected in ("select_movie_columns", "join_text_entities", "join_image_scene",
                         "gen_excitement_score", "gen_recency_score", "combine_scores",
                         "classify_boring", "filter_boring", "join_results", "rank_films"):
            assert expected in names

    def test_signature_json_matches_figure3_layout(self, parser_models, populated_catalog):
        _, _, plan = self._plan(parser_models, populated_catalog)
        payload = json.loads(plan.to_json())
        classify = [node for node in payload if node["name"] == "classify_boring"][0]
        assert set(classify) == {"name", "description", "inputs", "output"}
        assert classify["inputs"] == ["films_with_image_scene"]
        assert classify["output"] == "films_with_boring_flag"

    def test_dependency_patterns_assigned(self, parser_models, populated_catalog):
        _, _, plan = self._plan(parser_models, populated_catalog)
        assert plan.node("join_text_entities").dependency_pattern == "many_to_many"
        assert plan.node("gen_excitement_score").dependency_pattern == "one_to_one"

    def test_verifier_rejects_then_accepts_after_revision(self, parser_models, populated_catalog):
        generator, _, plan = self._plan(parser_models, populated_catalog)
        verifier = PlanVerifier(parser_models, populated_catalog)
        first = verifier.verify(plan)
        assert not first.approved
        assert any("join key" in hint for hint in first.hints)
        revised = generator.revise(plan, first.hints)
        second = verifier.verify(revised)
        assert second.approved
        assert second.tool_calls > 0

    def test_verifier_flags_unknown_input(self, parser_models, populated_catalog):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="bad", description="reads a ghost table",
                                 inputs=["ghost_table"], output="out"))
        report = PlanVerifier(parser_models, populated_catalog).verify(plan)
        assert not report.approved
        assert any("ghost_table" in p for p in report.problems)

    def test_verifier_flags_missing_column(self, parser_models, populated_catalog):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="select_movie_columns", description="select columns",
                                 inputs=["movie_table"], output="films_base",
                                 parameters={"columns": ["movie_id", "box_office"]}))
        report = PlanVerifier(parser_models, populated_catalog).verify(plan)
        assert not report.approved
        assert any("box_office" in p for p in report.problems)

    def test_non_flagship_plan_shapes(self, parser_models, populated_catalog):
        channel = InteractionChannel(SilentUser())
        outcome = NLParser(parser_models).parse("Which films have a boring poster?", channel)
        plan = LogicalPlanGenerator(parser_models, populated_catalog).generate(
            outcome.sketch, outcome.intent)
        names = [n.name for n in plan]
        assert "classify_boring" in names and "filter_boring" in names
        assert "gen_excitement_score" not in names
        assert names[-1] == "project_result"


class TestCatalogToolUser:
    def test_utilities(self, populated_catalog):
        tools = CatalogToolUser(populated_catalog)
        assert tools.row_count("movie_table") == 20
        assert "movie_id" in tools.column_names("movie_table")
        assert tools.joinability("movie_table", "film_plot") == ["movie_id"]
        assert len(tools.sample_rows("movie_table", 2)) == 2
        assert tools.calls == 4

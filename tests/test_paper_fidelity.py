"""Paper-fidelity tests: one assertion block per claim in the paper's walk-through.

These tests pin the reproduction to the specific artifacts the paper shows
(Section 6 and Figures 2-6), so regressions that silently change the
reproduced behaviour fail loudly even if the generic unit tests still pass.
"""

import json

import pytest

from repro.data.workloads import FLAGSHIP_QUERY


class TestSection6Walkthrough:
    """The numbered claims of the paper's Section 6."""

    def test_claim_clarification_question_is_asked(self, flagship_result):
        # "The query parser accepts the query and asks the following
        #  clarification question: 'What does exciting mean in this context?'"
        from repro.interaction.channel import InteractionKind
        clarifications = flagship_result.transcript.of_kind(InteractionKind.CLARIFICATION)
        assert len(clarifications) == 1
        assert clarifications[0].system_message == "What does 'exciting' mean in this context?"

    def test_claim_user_reply_is_the_papers(self, flagship_result):
        # "We simulate the following user reply: 'The movie plot contains
        #  scenes that are uncommon in real life'."
        assert "uncommon" in flagship_result.intent.clarifications["exciting"]

    def test_claim_eight_then_eleven_sketch_steps(self, loaded_db, flagship_result):
        # "the parser then generates a query sketch with eight steps ...
        #  The parser updates the plan and produces an 11-step query sketch."
        assert len(flagship_result.sketch) == 11
        assert flagship_result.sketch.version == 2

    def test_claim_ten_logical_plan_nodes(self, flagship_result):
        # "leaving 10 remaining logical plan nodes" (view population is step 1).
        assert len(flagship_result.logical_plan) == 10

    def test_claim_generated_functions_cover_the_papers_list(self, flagship_result):
        # The paper enumerates: column selection, text join, image join,
        # excitement scores via keyword/vector similarity, recency scores,
        # combination, boring classification, boring filter, final joins+rank.
        names = {node.name for node in flagship_result.logical_plan}
        expected = {
            "select_movie_columns", "join_text_entities", "join_image_scene",
            "gen_excitement_score", "gen_recency_score", "combine_scores",
            "classify_boring", "filter_boring", "join_results", "rank_films",
        }
        assert names == expected

    def test_claim_keyword_list_is_llm_generated(self, flagship_result):
        # "(4) computes excitement scores by measuring vector similarity between
        #  keywords (e.g., gun, murder, ...) ... a LLM generates the keyword list".
        node = flagship_result.logical_plan.node("gen_excitement_score")
        keywords = set(node.parameters["keywords"])
        assert keywords & {"gun", "fight", "attack", "accused", "bomb"}

    def test_claim_final_tuple_matches_figure6(self, flagship_result):
        # "a tuple (lid=1621) is generated, as shown in Figure 6": the top
        # result is Guilty by Suspicion (1991) above Clean and Sober (1988),
        # both flagged as boring posters, each with its own lid.
        rows = flagship_result.rows()
        assert rows[0]["title"] == "Guilty by Suspicion" and rows[0]["year"] == 1991
        assert rows[1]["title"] == "Clean and Sober" and rows[1]["year"] == 1988
        assert rows[0]["boring_poster"] and rows[1]["boring_poster"]
        assert rows[0]["final_score"] > rows[1]["final_score"]
        assert isinstance(rows[0]["lid"], int) and rows[0]["lid"] != rows[1]["lid"]


class TestFigureArtifacts:
    def test_figure2_lineage_shape(self, flagship_result):
        # Figure 2: the excitement row is row-level; the text/scene join is a
        # table-level artifact whose parents are previously loaded tables; raw
        # sources have NULL parents and file:// URIs.
        lineage = flagship_result.lineage
        excitement_rows = [e for e in lineage.entries
                           if e.func_id == "gen_excitement_score" and e.data_type == "row"]
        assert excitement_rows
        join_tables = [e for e in lineage.entries
                       if e.func_id == "join_text_entities" and e.data_type == "table"]
        assert join_tables
        roots = [e for e in lineage.entries if e.parent_lid is None]
        assert all(e.src_uri and e.src_uri.startswith("file://") for e in roots)

    def test_figure3_signature_layout(self, flagship_result):
        payload = json.loads(flagship_result.logical_plan.to_json())
        classify = next(node for node in payload if node["name"] == "classify_boring")
        assert list(classify.keys()) == ["name", "description", "inputs", "output"]
        assert classify["inputs"] == ["films_with_image_scene"]
        assert classify["output"] == "films_with_boring_flag"

    def test_figure5_fine_explanation_ingredients(self, loaded_db, flagship_result):
        # Figure 5 (right): keyword evidence, recency assignment, and the
        # weighted final score for a specific lid.
        explanation = loaded_db.explain_tuple(flagship_result,
                                              flagship_result.rows()[0]["lid"])
        text = explanation.describe()
        assert "excitement_score" in text
        assert "recency_score" in text
        assert "weighted sum: 0.7" in text
        assert explanation.produced_by == "combine_scores"

    def test_figure5_coarse_explanation_mentions_boring_rule(self, loaded_db, flagship_result):
        # Figure 5 (left): "...flags posters as 'boring' if they lack color,
        # detail, or action based on various visual features..."
        text = loaded_db.explain_pipeline(flagship_result).lower()
        assert "poster" in text and "boring" in text
        assert "rank" in text

    def test_query_text_is_the_papers(self, flagship_query):
        assert flagship_query == FLAGSHIP_QUERY
        assert "exciting" in flagship_query and "'boring'" in flagship_query


class TestPaperDesignProperties:
    def test_function_versions_are_monotonic_and_immutable(self, loaded_db):
        registry = loaded_db.registry
        for name in registry.names():
            versions = [f.version for f in registry.versions(name)]
            assert versions == list(range(1, len(versions) + 1))

    def test_every_output_tuple_is_traceable_to_sources(self, flagship_result):
        lineage = flagship_result.lineage
        for row in flagship_result.final_table:
            ancestors = lineage.ancestors_of(row["lid"])
            uris = [lineage.entries_for(a)[0].src_uri for a in ancestors]
            assert any(uri and uri.startswith("file://data/mmqa/") for uri in uris), \
                f"tuple {row['lid']} does not trace back to a raw source"

    def test_wide_functions_record_table_level_only(self, flagship_result):
        lineage = flagship_result.lineage
        for func_id in ("join_text_entities", "join_image_scene", "join_results", "rank_films"):
            kinds = {e.data_type for e in lineage.entries if e.func_id == func_id}
            assert kinds == {"table"}, f"{func_id} should record table-level lineage only"

    def test_narrow_functions_record_row_level(self, flagship_result):
        lineage = flagship_result.lineage
        for func_id in ("gen_excitement_score", "gen_recency_score", "combine_scores",
                        "classify_boring", "filter_boring"):
            kinds = {e.data_type for e in lineage.entries if e.func_id == func_id}
            assert "row" in kinds, f"{func_id} should record row-level lineage"

    def test_intermediate_results_are_materialized_and_named(self, flagship_result):
        # The FAO design materializes every intermediate table under the name
        # declared by the producing node's `output` field.
        for node in flagship_result.logical_plan:
            assert node.output in flagship_result.intermediates
            assert len(flagship_result.intermediates[node.output]) > 0

"""Unit and integration tests for the execution engine, monitor, and repair loops."""

import pytest

from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.datamodel.lineage import LINEAGE_LEVEL_OFF, LINEAGE_LEVEL_TABLE, LineageStore
from repro.datamodel.views import ViewPopulator
from repro.errors import RepairFailedError
from repro.executor.engine import ExecutionEngine
from repro.executor.monitor import ANOMALY_OPTIONS, ExecutionMonitor
from repro.fao.codegen import Coder, FAULT_SEMANTIC_REVERSED, FAULT_SYNTACTIC_FRAGILE
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel, InteractionKind
from repro.interaction.user import ScriptedUser, SilentUser
from repro.models.base import ModelSuite
from repro.optimizer.optimizer import QueryOptimizer
from repro.parser.logical_plan import LogicalPlanNode
from repro.parser.nl_parser import NLParser
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.relational.catalog import Catalog
from repro.relational.table import Table


def build_environment(corpus, fault_injection=None, lineage_level="row", monitor_enabled=True):
    """A fresh, fully wired execution environment for one test."""
    models = ModelSuite.create(seed=13)
    catalog = Catalog()
    lineage = LineageStore(level=lineage_level)
    ViewPopulator(models, catalog, lineage).load_corpus(corpus)
    registry = FunctionRegistry()
    coder = Coder(models, fault_injection=fault_injection or {})
    optimizer = QueryOptimizer(models, catalog, registry, coder=coder, explore_variants=False)
    engine = ExecutionEngine(models, catalog, lineage, registry, coder=coder,
                             monitor=ExecutionMonitor(models, enabled=monitor_enabled))
    return models, catalog, lineage, registry, optimizer, engine


def flagship_plan(models, catalog, channel):
    outcome = NLParser(models).parse(FLAGSHIP_QUERY, channel)
    return LogicalPlanGenerator(models, catalog).generate(outcome.sketch, outcome.intent)


def flagship_channel():
    return InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                           [FLAGSHIP_CORRECTION]))


class TestBasicExecution:
    def test_flagship_execution_produces_figure6_ordering(self, corpus):
        models, catalog, lineage, registry, optimizer, engine = build_environment(corpus)
        channel = flagship_channel()
        plan = flagship_plan(models, catalog, channel)
        physical, _ = optimizer.optimize(plan)
        result = engine.execute(physical, channel, nl_query=FLAGSHIP_QUERY)
        assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]
        assert all(row["boring_poster"] for row in result.final_table)
        assert result.total_tokens > 0
        assert len(result.records) == len(physical)
        assert result.record_for("rank_films").rows_out == len(result.final_table)
        assert "execution records" in result.describe()

    def test_intermediates_stay_out_of_the_catalog(self, corpus):
        # Intermediates live in the execution context / result, never in the
        # shared catalog: concurrent queries must not see each other's state.
        models, catalog, lineage, registry, optimizer, engine = build_environment(corpus)
        channel = flagship_channel()
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        tables_before = set(catalog.table_names())
        result = engine.execute(physical, channel)
        assert "films_with_final_score" in result.intermediates
        assert not catalog.has_table("films_with_final_score")
        assert set(catalog.table_names()) == tables_before

    def test_execution_context_namespace_persists(self, corpus):
        # A caller-supplied context accumulates intermediates across runs,
        # giving sessions a private namespace later queries can reference.
        from repro.executor.context import ExecutionContext
        models, catalog, lineage, registry, optimizer, engine = build_environment(corpus)
        channel = flagship_channel()
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        context = ExecutionContext.for_catalog(catalog, lineage=lineage)
        engine.execute(physical, channel, context=context)
        assert "films_with_final_score" in context.intermediates
        assert context.table_lids["films_with_final_score"] > 0

    def test_row_lineage_for_narrow_and_table_for_wide(self, corpus):
        models, catalog, lineage, registry, optimizer, engine = build_environment(corpus)
        channel = flagship_channel()
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        result = engine.execute(physical, channel)
        assert result.record_for("gen_excitement_score").lineage_data_type == "row"
        assert result.record_for("join_text_entities").lineage_data_type == "table"
        assert result.record_for("rank_films").lineage_data_type == "table"
        # Every final row carries the lid assigned by combine_scores and the
        # lineage store can trace it back to the raw sources (Figure 2).
        lid = result.rows()[0]["lid"]
        assert lineage.producing_function(lid)[0] == "combine_scores"
        ancestors = lineage.ancestors_of(lid)
        source_uris = [lineage.entries_for(a)[0].src_uri for a in ancestors]
        assert any(uri and "movie_table" in uri for uri in source_uris)

    def test_lineage_off_mode(self, corpus):
        models, catalog, lineage, registry, optimizer, engine = build_environment(
            corpus, lineage_level=LINEAGE_LEVEL_OFF)
        channel = flagship_channel()
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        before = len(lineage)
        result = engine.execute(physical, channel)
        assert len(lineage) == before
        assert all(record.lineage_data_type == "off" for record in result.records)
        assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]

    def test_lineage_table_mode_records_fewer_entries(self, corpus):
        models_r, catalog_r, lineage_row, *_rest = build_environment(corpus)
        _, _, lineage_tbl, _, optimizer_t, engine_t = build_environment(
            corpus, lineage_level=LINEAGE_LEVEL_TABLE)
        channel = flagship_channel()
        physical, _ = optimizer_t.optimize(flagship_plan(engine_t.models, engine_t.catalog,
                                                         channel))
        engine_t.execute(physical, channel)
        assert lineage_tbl.summary()["row"] == 0
        assert lineage_tbl.summary()["table"] > 0


class TestSyntacticRepair:
    def test_heic_fault_is_repaired_on_the_fly(self, corpus):
        fault = {"classify_boring": FAULT_SYNTACTIC_FRAGILE}
        models, catalog, lineage, registry, optimizer, engine = build_environment(
            corpus, fault_injection=fault)
        # Make one poster an unsupported format (the paper's example).
        posters = catalog.table("poster_images")
        posters.rows[0]["image_uri"] = "file://posters/guilty_by_suspicion.heic"
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
        channel = InteractionChannel(user)
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        # Re-arm the fault for execution (the optimizer's critic repaired its copy).
        engine.coder.fault_injection["classify_boring"] = FAULT_SYNTACTIC_FRAGILE
        physical.operator("classify_boring").function = engine.coder.generate(
            physical.operator("classify_boring").node, variant="scene_statistics")
        registry.register(physical.operator("classify_boring").function)

        result = engine.execute(physical, channel, nl_query=FLAGSHIP_QUERY)
        record = result.record_for("classify_boring")
        assert record.repairs, "expected an on-the-fly syntactic repair"
        assert record.function_version > 1
        assert user.notices, "the user should be notified about the runtime repair"
        assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]

    def test_repair_budget_exhaustion_raises(self, corpus):
        models, catalog, lineage, registry, optimizer, engine = build_environment(corpus)
        node = LogicalPlanNode(name="rank_films", description="always fails",
                               inputs=["movie_table"], output="out",
                               dependency_pattern="many_to_one",
                               parameters={"sort_column": "x"})

        def always_fails(inputs, context):
            raise ValueError("irreparable")

        from repro.fao.function import GeneratedFunction
        from repro.fao.signature import FunctionSignature
        from repro.optimizer.physical_plan import PhysicalOperator, PhysicalPlan

        broken = GeneratedFunction(signature=FunctionSignature.from_node(node),
                                   body=always_fails, source_text="def rank_films(): raise")
        # Repairs regenerate from the library; force the library path to keep
        # failing by pointing the node at a missing input table.
        node.inputs = ["missing_table"]
        plan = PhysicalPlan(operators=[PhysicalOperator(node=node, function=broken)])
        with pytest.raises(RepairFailedError):
            engine.execute(plan, InteractionChannel(SilentUser()))


class TestSemanticMonitoring:
    def test_monitor_escalates_reversed_recency_and_user_adjusts(self, corpus):
        fault = {"gen_recency_score": FAULT_SEMANTIC_REVERSED}
        models, catalog, lineage, registry, optimizer, engine = build_environment(
            corpus, fault_injection=fault)
        # Skip the optimizer's critic (it would fix the bug before execution) by
        # disabling repair rounds there, so the monitor sees the buggy version.
        optimizer.max_repair_rounds = 0
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION],
                            anomaly_choice="adjust")
        channel = InteractionChannel(user)
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        engine.coder.fault_injection["gen_recency_score"] = FAULT_SEMANTIC_REVERSED
        physical.operator("gen_recency_score").function = engine.coder.generate(
            physical.operator("gen_recency_score").node)
        registry.register(physical.operator("gen_recency_score").function)

        result = engine.execute(physical, channel, nl_query=FLAGSHIP_QUERY)
        record = result.record_for("gen_recency_score")
        assert record.anomalies, "the monitor should have flagged the reversed recency"
        assert record.repairs, "the user chose 'adjust', so the function must be regenerated"
        anomaly_turns = channel.transcript.of_kind(InteractionKind.SEMANTIC_ANOMALY)
        assert anomaly_turns and anomaly_turns[0].user_reply == "adjust"
        # After adjustment the recency direction is correct again.
        recency = {row["title"]: row["recency_score"]
                   for row in result.intermediates["films_with_recency"]}
        assert recency["Redline Protocol"] == max(recency.values())

    def test_monitor_accept_keeps_buggy_output(self, corpus):
        fault = {"gen_recency_score": FAULT_SEMANTIC_REVERSED}
        models, catalog, lineage, registry, optimizer, engine = build_environment(
            corpus, fault_injection=fault)
        optimizer.max_repair_rounds = 0
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION],
                            anomaly_choice="accept")
        channel = InteractionChannel(user)
        physical, _ = optimizer.optimize(flagship_plan(models, catalog, channel))
        engine.coder.fault_injection["gen_recency_score"] = FAULT_SEMANTIC_REVERSED
        physical.operator("gen_recency_score").function = engine.coder.generate(
            physical.operator("gen_recency_score").node)
        result = engine.execute(physical, channel)
        record = result.record_for("gen_recency_score")
        assert record.anomalies and not record.repairs

    def test_monitor_flags_duplicate_poster_join(self, corpus):
        models = ModelSuite.create(seed=1)
        monitor = ExecutionMonitor(models)
        node = LogicalPlanNode(name="join_posters", description="join posters to movies",
                               inputs=["left"], output="joined")
        inputs = {"left": Table.from_rows("left", [{"movie_id": 1}, {"movie_id": 2}])}
        output = Table.from_rows("joined", [
            {"movie_id": 1, "image_uri": "poster_a.png"},
            {"movie_id": 2, "image_uri": "poster_a.png"},
        ])
        from repro.fao.function import GeneratedFunction
        from repro.fao.signature import FunctionSignature
        function = GeneratedFunction(signature=FunctionSignature.from_node(node),
                                     body=lambda i, c: output, source_text="")
        anomalies = monitor.inspect(node, function, inputs, output)
        assert any("linked to multiple" in a.message for a in anomalies)
        assert ANOMALY_OPTIONS == ["accept", "adjust", "rewrite"]

    def test_monitor_disabled_reports_nothing(self, corpus):
        models = ModelSuite.create(seed=1)
        monitor = ExecutionMonitor(models, enabled=False)
        node = LogicalPlanNode(name="x", description="", inputs=["left"], output="out")
        assert monitor.inspect(node, None, {}, Table.from_rows("out", [{"a": 1}])) == []

    def test_monitor_flags_empty_output(self, corpus):
        models = ModelSuite.create(seed=1)
        monitor = ExecutionMonitor(models)
        node = LogicalPlanNode(name="gen_score", description="score each row",
                               inputs=["left"], output="out")
        from repro.fao.function import GeneratedFunction
        from repro.fao.signature import FunctionSignature
        from repro.relational.schema import Schema
        empty = Table("out", Schema([]))
        function = GeneratedFunction(signature=FunctionSignature.from_node(node),
                                     body=lambda i, c: empty, source_text="")
        inputs = {"left": Table.from_rows("left", [{"movie_id": 1}])}
        anomalies = monitor.inspect(node, function, inputs, empty)
        assert any("empty" in a.message for a in anomalies)

"""Unit tests for the semantic lexicon."""

from repro.models.lexicon import Concept, DEFAULT_LEXICON, Lexicon, default_lexicon


class TestConcept:
    def test_terms_are_normalized_and_include_name(self):
        concept = Concept("Danger", {"Gun ", "KNIFE"})
        assert concept.contains("gun")
        assert concept.contains("danger")
        assert not concept.contains("flower")


class TestLexiconMembership:
    def test_default_covers_paper_vocabulary(self):
        for term in ("gun", "murder", "threat", "kill", "suspicion"):
            assert "excitement" in DEFAULT_LEXICON.concepts_of_term(term)
        assert "boring_visual" in DEFAULT_LEXICON.concepts_of_term("plain")
        assert "subjective" in DEFAULT_LEXICON.concepts_of_term("exciting")

    def test_terms_for_unknown_concept(self):
        assert DEFAULT_LEXICON.terms_for("nonexistent") == []

    def test_membership_vector(self):
        vector = DEFAULT_LEXICON.membership_vector("gun")
        assert vector.get("excitement") == 1.0
        assert "calm" not in vector

    def test_best_concept(self):
        assert DEFAULT_LEXICON.best_concept("garden") == "calm"
        assert DEFAULT_LEXICON.best_concept("qwertyuiop") is None


class TestAffinity:
    def test_identical_terms(self):
        assert DEFAULT_LEXICON.affinity("gun", "Gun") == 1.0

    def test_same_cluster_terms(self):
        assert DEFAULT_LEXICON.affinity("gun", "murder") > 0.0

    def test_unrelated_terms(self):
        assert DEFAULT_LEXICON.affinity("gun", "garden") == 0.0

    def test_unknown_terms(self):
        assert DEFAULT_LEXICON.affinity("zzz", "gun") == 0.0


class TestTextAffinity:
    def test_exciting_text_scores_higher(self):
        exciting = "A gunfight, an explosion, and a murder during the chase."
        calm = "A quiet dinner and a gentle walk in the garden."
        assert DEFAULT_LEXICON.text_affinity(exciting, "excitement") > \
            DEFAULT_LEXICON.text_affinity(calm, "excitement")

    def test_empty_text(self):
        assert DEFAULT_LEXICON.text_affinity("", "excitement") == 0.0

    def test_matching_terms_deduplicated(self):
        terms = DEFAULT_LEXICON.matching_terms("gun gun murder", "excitement")
        assert terms == ["gun", "murder"]

    def test_matching_terms_unknown_concept(self):
        assert DEFAULT_LEXICON.matching_terms("gun", "nonexistent") == []


class TestMutation:
    def test_add_terms_extends_existing_concept(self):
        lexicon = default_lexicon()
        lexicon.add_terms("excitement", ["parkour"])
        assert "excitement" in lexicon.concepts_of_term("parkour")
        # The shared default lexicon is unaffected.
        assert "excitement" not in DEFAULT_LEXICON.concepts_of_term("parkour")

    def test_add_terms_creates_new_concept(self):
        lexicon = Lexicon()
        lexicon.add_terms("exciting", ["gun", "chase"])
        assert lexicon.concept("exciting") is not None
        assert lexicon.concepts_of_term("chase") == ["exciting"]

    def test_concept_names_sorted(self):
        lexicon = Lexicon([Concept("b"), Concept("a")])
        assert lexicon.concept_names() == ["a", "b"]

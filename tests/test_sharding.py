"""Tests for shared-nothing sharding: splitting, routing, scatter-gather."""

from __future__ import annotations

import pytest

from repro.api.request import QueryRequest
from repro.api.service import KathDBService
from repro.core.config import KathDBConfig
from repro.data.mmqa import build_movie_corpus
from repro.errors import KathDBError
from repro.interaction.user import SilentUser
from repro.sharding import HashRing, ShardedService, split_corpus

CORPUS_SIZE = 10
SEED = 7


def quiet_config(**overrides):
    return KathDBConfig(seed=SEED, simulate_model_latency=0.0, **overrides)


def table_digest(table):
    """Rows minus the per-process lineage lid; blobs compare by URI."""
    return [{k: getattr(v, "uri", v) for k, v in dict(row).items()
             if k != "lid"} for row in table]


@pytest.fixture(scope="module")
def corpus():
    return build_movie_corpus(size=CORPUS_SIZE, seed=SEED)


@pytest.fixture(scope="module")
def reference(corpus):
    """A single-process service over the same corpus (the ground truth)."""
    service = KathDBService(quiet_config())
    service.load_corpus(corpus)
    yield service
    service.shutdown()


@pytest.fixture()
def sharded(corpus):
    service = ShardedService(quiet_config(), shards=3)
    service.load_corpus(corpus)
    yield service
    service.shutdown()


# -- corpus splitting ------------------------------------------------------------------

class TestSplitCorpus:
    def test_slices_are_contiguous_and_order_preserving(self, corpus):
        slices = split_corpus(corpus, 3)
        assert [len(s.movies) for s in slices] == [4, 3, 3]
        rejoined = [m.movie_id for s in slices for m in s.movies]
        assert rejoined == [m.movie_id for m in corpus.movies]
        assert all(s.seed == corpus.seed for s in slices)

    def test_more_shards_than_documents(self, corpus):
        slices = split_corpus(corpus, CORPUS_SIZE + 5)
        assert len(slices) == CORPUS_SIZE + 5
        assert sum(len(s.movies) for s in slices) == CORPUS_SIZE

    def test_invalid_shard_count(self, corpus):
        with pytest.raises(ValueError):
            split_corpus(corpus, 0)


# -- the hash ring ---------------------------------------------------------------------

class TestHashRing:
    def test_deterministic_and_stable_across_instances(self):
        keys = [f"request-{i}" for i in range(100)]
        first = HashRing(range(4))
        second = HashRing(range(4))
        assert [first.node_for(k) for k in keys] == \
               [second.node_for(k) for k in keys]

    def test_reasonable_balance(self):
        ring = HashRing(range(4))
        counts = ring.distribution([f"key-{i}" for i in range(2000)])
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 2000 // 4 // 3

    def test_minimal_movement_on_resize(self):
        keys = [f"key-{i}" for i in range(1000)]
        ring = HashRing(range(4))
        before = {k: ring.node_for(k) for k in keys}
        ring.add(4)
        moved = sum(1 for k in keys
                    if ring.node_for(k) != before[k] and before[k] != 4)
        # Consistent hashing: ~1/5 of keys move to the new node; far fewer
        # than the near-total reshuffle of hash(key) % n.
        assert moved < len(keys) // 2
        assert all(ring.node_for(k) in (before[k], 4) for k in keys)
        ring.remove(4)
        assert {k: ring.node_for(k) for k in keys} == before

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing().node_for("anything")


# -- scatter-gather population and scans ----------------------------------------------

class TestPartitionedScans:
    def test_population_report_sums_shard_row_counts(self, sharded, reference):
        assert sharded.population_report.row_counts == \
            reference.population_report.row_counts

    def test_every_merged_scan_is_row_identical(self, sharded, reference):
        for name in reference.catalog.table_names():
            assert table_digest(sharded.scan(name)) == \
                table_digest(reference.catalog.table(name)), name

    def test_scan_of_unknown_table_raises(self, sharded):
        with pytest.raises(KathDBError):
            sharded.scan("no_such_table")

    def test_shard_paths_are_disjoint(self, tmp_path):
        config = quiet_config(gateway_cache_backend="sqlite",
                              gateway_cache_path=tmp_path / "gw.db",
                              trace_jsonl_path=tmp_path / "traces.jsonl")
        service = ShardedService(config, shards=2)
        paths = {shard.config.gateway_cache_path for shard in service.shards}
        assert len(paths) == 2
        trace_paths = {shard.config.trace_jsonl_path
                       for shard in service.shards}
        assert len(trace_paths) == 2
        service.shutdown()


# -- queries ---------------------------------------------------------------------------

class TestScatterQueries:
    QUERY = "movies released after 1990"

    def test_scatter_query_matches_single_process(self, sharded, reference):
        ours = sharded.query(self.QUERY, user=SilentUser())
        theirs = reference.query(self.QUERY, user=SilentUser())
        assert ours.ok and theirs.ok
        assert table_digest(ours.result.final_table) == \
            table_digest(theirs.result.final_table)

    def test_one_failing_shard_surfaces_a_structured_error(self, sharded):
        original = sharded.shards[1].query

        def explode(request, **kwargs):
            raise RuntimeError("disk on fire")

        sharded.shards[1].query = explode
        try:
            response = sharded.query(self.QUERY, user=SilentUser())
            # No hang, no partial rows: ok=False, the failing shard named,
            # result absent entirely.
            assert not response.ok
            assert response.error.startswith("shard 1:")
            assert "disk on fire" in response.error
            assert response.result is None
        finally:
            sharded.shards[1].query = original
        # Sibling shards stay fully usable for the next request.
        recovered = sharded.query(self.QUERY, user=SilentUser())
        assert recovered.ok

    def test_replicated_requests_route_consistently(self, corpus):
        service = ShardedService(quiet_config(), shards=2,
                                 placement="replicate")
        service.load_corpus(corpus)
        try:
            for _ in range(2):
                assert service.query(self.QUERY, user=SilentUser()).ok
            routed = [s["routed"] for s in service.shard_stats()]
            # Same fingerprint -> same home shard, twice.
            assert sorted(routed) == [0, 2]
        finally:
            service.shutdown()

    def test_query_batch_round_trips(self, sharded):
        requests = [QueryRequest(nl_query=self.QUERY, user=SilentUser())
                    for _ in range(2)]
        responses = sharded.query_batch(requests)
        assert [r.ok for r in responses] == [True, True]


# -- lifecycle -------------------------------------------------------------------------

class TestLifecycle:
    def test_invalid_construction(self):
        with pytest.raises(KathDBError):
            ShardedService(quiet_config(), shards=0)
        with pytest.raises(KathDBError):
            ShardedService(quiet_config(), shards=2, placement="mirrored")

    def test_shutdown_is_idempotent_and_closes_shards(self, corpus):
        service = ShardedService(quiet_config(), shards=2)
        service.load_corpus(corpus)
        service.shutdown()
        service.shutdown()
        assert all(shard._closed for shard in service.shards)

    def test_context_manager(self, corpus):
        with ShardedService(quiet_config(), shards=2) as service:
            service.load_corpus(corpus)
        assert service._closed

    def test_describe_and_gauges(self, sharded):
        text = sharded.describe()
        assert "3 shards" in text
        snapshot = sharded.metrics.snapshot()
        assert snapshot["gauges"]["shard.0.catalog_tables"] > 0

"""Shared fixtures for the KathDB reproduction test suite.

Expensive artifacts (the loaded KathDB instance and the flagship query result)
are session-scoped: many integration tests inspect them, and they are fully
deterministic, so sharing them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import pytest

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.models.base import ModelSuite
from repro.relational.catalog import Catalog
from repro.relational.table import Table

CORPUS_SIZE = 20
CORPUS_SEED = 7


@pytest.fixture(scope="session")
def corpus():
    """The synthetic MMQA-style movie corpus used across the suite."""
    return build_movie_corpus(size=CORPUS_SIZE, seed=CORPUS_SEED)


@pytest.fixture(scope="session")
def models():
    """A shared simulated-model suite (deterministic, read-only usage)."""
    return ModelSuite.create(seed=42)


@pytest.fixture()
def fresh_models():
    """A fresh model suite for tests that mutate the lexicon or count tokens."""
    return ModelSuite.create(seed=42)


@pytest.fixture()
def movie_tables(corpus):
    """Fresh base relations exported from the corpus."""
    return corpus.to_tables()


@pytest.fixture()
def small_catalog():
    """A small catalog with two joinable tables for relational tests."""
    catalog = Catalog()
    movies = Table.from_rows("movies", [
        {"movie_id": 1, "title": "Guilty by Suspicion", "year": 1991, "score": 0.99},
        {"movie_id": 2, "title": "Clean and Sober", "year": 1988, "score": 0.97},
        {"movie_id": 3, "title": "Old Film", "year": 1950, "score": 0.20},
        {"movie_id": 4, "title": "Quiet Days", "year": 2003, "score": None},
    ])
    plots = Table.from_rows("plots", [
        {"movie_id": 1, "plot": "a tense thriller about the blacklist"},
        {"movie_id": 2, "plot": "a drama about recovery"},
        {"movie_id": 3, "plot": "an old quiet story"},
    ])
    catalog.register(movies)
    catalog.register(plots)
    return catalog


def make_flagship_user() -> ScriptedUser:
    """The scripted user from the paper's Section 6 walk-through."""
    return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])


@pytest.fixture(scope="session")
def loaded_db(corpus):
    """A KathDB instance with the corpus loaded (views populated)."""
    db = KathDB(KathDBConfig(seed=CORPUS_SEED))
    db.load_corpus(corpus)
    return db


@pytest.fixture(scope="session")
def flagship_result(loaded_db):
    """The flagship query executed once against the shared instance."""
    user = make_flagship_user()
    return loaded_db.query(FLAGSHIP_QUERY, user=user)


@pytest.fixture(scope="session")
def flagship_query() -> str:
    return FLAGSHIP_QUERY

"""Unit tests for the relational-algebra operators."""

import pytest

from repro.errors import RelationalError, UnknownColumnError
from repro.relational.expressions import BinaryOp, col, lit
from repro.relational.operators import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Project,
    Sort,
    TableScan,
    aggregate,
    cross_product,
    distinct,
    extend,
    filter_rows,
    hash_join,
    limit,
    project,
    rename_columns,
    sort,
    union_all,
)
from repro.relational.table import Table


@pytest.fixture()
def movies():
    return Table.from_rows("movies", [
        {"movie_id": 1, "title": "Guilty by Suspicion", "year": 1991, "genre": "drama"},
        {"movie_id": 2, "title": "Clean and Sober", "year": 1988, "genre": "drama"},
        {"movie_id": 3, "title": "Midnight Circuit", "year": 2019, "genre": "action"},
        {"movie_id": 4, "title": "Letters to Anna", "year": 1996, "genre": "romance"},
    ])


@pytest.fixture()
def scores():
    return Table.from_rows("scores", [
        {"movie_id": 1, "score": 0.99},
        {"movie_id": 2, "score": 0.97},
        {"movie_id": 3, "score": 0.91},
        {"movie_id": 9, "score": 0.10},
    ])


class TestBasicOperators:
    def test_filter_rows(self, movies):
        recent = filter_rows(movies, BinaryOp(">", col("year"), lit(1990)))
        assert {r["movie_id"] for r in recent} == {1, 3, 4}

    def test_project_and_unknown_column(self, movies):
        projected = project(movies, ["title", "year"])
        assert projected.column_names() == ["title", "year"]
        with pytest.raises(UnknownColumnError):
            project(movies, ["bogus"])

    def test_extend_adds_computed_column(self, movies):
        extended = extend(movies, "decade", BinaryOp("-", col("year"),
                                                     BinaryOp("%", col("year"), lit(10))))
        assert extended[0]["decade"] == 1990
        assert "decade" in extended.schema

    def test_rename_columns(self, movies):
        renamed = rename_columns(movies, {"title": "name"})
        assert "name" in renamed.schema and "title" not in renamed.schema
        assert renamed[0]["name"] == "Guilty by Suspicion"

    def test_distinct_subset(self, movies):
        unique = distinct(movies, ["genre"])
        assert len(unique) == 3

    def test_sort_multi_key(self, movies):
        ordered = sort(movies, [("genre", False), ("year", True)])
        assert [r["movie_id"] for r in ordered] == [3, 1, 2, 4]

    def test_limit_offset(self, movies):
        assert [r["movie_id"] for r in limit(movies, 2, offset=1)] == [2, 3]

    def test_union_all(self, movies):
        doubled = union_all(movies, movies)
        assert len(doubled) == 8

    def test_union_incompatible(self, movies, scores):
        with pytest.raises(RelationalError):
            union_all(movies, scores)

    def test_cross_product(self, movies, scores):
        product = cross_product(movies, scores)
        assert len(product) == len(movies) * len(scores)
        assert "movie_id_right" in product.schema


class TestHashJoin:
    def test_inner_join(self, movies, scores):
        joined = hash_join(movies, scores, "movie_id", "movie_id")
        assert len(joined) == 3
        assert joined.schema.has_column("score")
        assert joined.schema.has_column("movie_id_right")

    def test_left_join_fills_nulls(self, movies, scores):
        joined = hash_join(movies, scores, "movie_id", "movie_id", how="left")
        assert len(joined) == 4
        unmatched = [r for r in joined if r["movie_id"] == 4][0]
        assert unmatched["score"] is None

    def test_unsupported_join_type(self, movies, scores):
        with pytest.raises(RelationalError):
            hash_join(movies, scores, "movie_id", "movie_id", how="full")

    def test_join_skips_null_keys(self, movies):
        right = Table.from_rows("right", [{"movie_id": None, "extra": 1},
                                          {"movie_id": 1, "extra": 2}])
        joined = hash_join(movies, right, "movie_id", "movie_id")
        assert len(joined) == 1


class TestAggregation:
    def test_group_by_count_avg(self, movies):
        result = aggregate(movies, ["genre"], [
            AggregateSpec("count", None, "n"),
            AggregateSpec("avg", "year", "avg_year"),
        ])
        by_genre = {row["genre"]: row for row in result}
        assert by_genre["drama"]["n"] == 2
        assert by_genre["drama"]["avg_year"] == pytest.approx(1989.5)

    def test_global_aggregation(self, movies):
        result = aggregate(movies, [], [AggregateSpec("max", "year", "latest"),
                                        AggregateSpec("min", "year", "earliest"),
                                        AggregateSpec("sum", "movie_id", "id_sum")])
        assert len(result) == 1
        assert result[0]["latest"] == 2019 and result[0]["earliest"] == 1988
        assert result[0]["id_sum"] == 10

    def test_collect_aggregate(self, movies):
        result = aggregate(movies, ["genre"], [AggregateSpec("collect", "title", "titles")])
        drama = [r for r in result if r["genre"] == "drama"][0]
        assert sorted(drama["titles"]) == ["Clean and Sober", "Guilty by Suspicion"]

    def test_aggregate_over_nulls(self):
        table = Table.from_rows("t", [{"g": 1, "v": None}, {"g": 1, "v": 2}])
        result = aggregate(table, ["g"], [AggregateSpec("count", "v", "n"),
                                          AggregateSpec("avg", "v", "a")])
        assert result[0]["n"] == 1 and result[0]["a"] == 2.0

    def test_unknown_aggregate(self, movies):
        with pytest.raises(RelationalError):
            aggregate(movies, [], [AggregateSpec("median", "year", "m")])

    def test_global_aggregation_on_empty_table(self, movies):
        empty = movies.empty_like("empty")
        result = aggregate(empty, [], [AggregateSpec("count", None, "n")])
        assert result[0]["n"] == 0


class TestOperatorTree:
    def test_composed_tree(self, movies, scores):
        tree = Limit(
            Sort(
                Project(
                    HashJoin(TableScan(movies), TableScan(scores), "movie_id", "movie_id"),
                    ["title", "score"]),
                [("score", True)]),
            2)
        result = tree.execute()
        assert [r["title"] for r in result] == ["Guilty by Suspicion", "Clean and Sober"]

    def test_explain_tree_renders_children(self, movies):
        tree = Distinct(Filter(TableScan(movies), BinaryOp(">", col("year"), lit(1990))))
        text = tree.explain_tree()
        assert "Distinct" in text and "Filter" in text and "Scan(movies" in text

    def test_aggregate_node(self, movies):
        node = Aggregate(TableScan(movies), ["genre"], [AggregateSpec("count", None, "n")])
        assert len(node.execute()) == 3
        assert "group_by=[genre]" in node.describe()

"""Edge-case tests complementing the per-module suites."""

import pytest

from repro.errors import (
    AmbiguousQueryError,
    ExplanationError,
    FunctionExecutionError,
    SemanticAnomalyError,
)
from repro.executor.result import QueryResult
from repro.explain.explainer import Explainer
from repro.explain.lineage_query import LineageQueryInterface
from repro.fao.codegen import Coder, FAULT_SEMANTIC_REVERSED
from repro.models.base import ModelSuite
from repro.models.cost import CostMeter
from repro.optimizer.cost_model import CostModel
from repro.optimizer.profile_cache import ProfileCache
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.relational.catalog import Catalog
from repro.relational.expressions import and_, or_
from repro.relational.schema import Schema
from repro.relational.table import Table


class TestErrorTypes:
    def test_ambiguous_query_error_carries_question_and_term(self):
        error = AmbiguousQueryError("What does 'exciting' mean?", term="exciting")
        assert error.question.startswith("What does")
        assert error.term == "exciting"

    def test_function_execution_error_carries_cause(self):
        cause = ValueError("boom")
        error = FunctionExecutionError("failed", function_name="classify_boring", cause=cause)
        assert error.function_name == "classify_boring"
        assert error.cause is cause

    def test_semantic_anomaly_error_carries_evidence(self):
        error = SemanticAnomalyError("looks wrong", function_name="join", evidence={"rows": 3})
        assert error.evidence == {"rows": 3}


class TestExpressionConvenience:
    def test_empty_conjunction_and_disjunction(self):
        assert and_().evaluate({}) is True
        assert or_().evaluate({}) is False

    def test_single_term_passthrough(self):
        from repro.relational.expressions import lit
        assert and_(lit(False)).evaluate({}) is False
        assert or_(lit(True)).evaluate({}) is True


class TestSchemaMergePrefixes:
    def test_explicit_prefixes_avoid_suffixing(self):
        left = Schema.of(("movie_id", "int"), ("title", "text"))
        right = Schema.of(("movie_id", "int"), ("score", "float"))
        merged = left.merge(right, prefix_left="l_", prefix_right="r_")
        assert merged.column_names() == ["l_movie_id", "l_title", "r_movie_id", "r_score"]


class TestCostMeterLatencyFamilies:
    def test_family_specific_latency(self):
        meter = CostMeter()
        llm_call = meter.record("llm:sim", "x", 1000, 0)
        embedding_call = meter.record("embedding:lexicon", "x", 1000, 0)
        assert llm_call.latency_s > embedding_call.latency_s

    def test_unknown_family_uses_default(self):
        call = CostMeter().record("mystery-model", "x", 100, 0)
        assert call.latency_s > 0


class TestCostModelDefaults:
    def test_estimate_plan_tokens_with_default_per_row(self, small_catalog):
        plan = LogicalPlan()
        plan.add(LogicalPlanNode(name="select_movie_columns", description="",
                                 inputs=["movies"], output="films_base",
                                 parameters={"columns": ["title"]}))
        total = CostModel(small_catalog).estimate_plan_tokens(plan)
        assert total == pytest.approx(4.0)  # 4 rows x default 1 token/row


class TestExplainerWithoutLineage:
    def test_explain_tuple_requires_lineage(self, models):
        explainer = Explainer(models)
        result = QueryResult(nl_query="x", final_table=Table("t", Schema([])))
        with pytest.raises(ExplanationError):
            explainer.explain_tuple(result, 1)

    def test_sql_over_lineage_requires_lineage(self, models):
        qa = LineageQueryInterface(models, Explainer(models))
        result = QueryResult(nl_query="x", final_table=Table("t", Schema([])))
        with pytest.raises(ExplanationError):
            qa.sql("SELECT count(*) AS n FROM lineage", result)


class TestCoderFaultScoping:
    def test_fault_only_applies_to_matching_family(self):
        models = ModelSuite.create(seed=2)
        coder = Coder(models, fault_injection={"rank_films": FAULT_SEMANTIC_REVERSED})
        node = LogicalPlanNode(name="rank_films", description="rank", inputs=["t"],
                               output="ranked", dependency_pattern="many_to_one",
                               parameters={"sort_column": "score"})
        function = coder.generate(node)
        # The reversed-recency fault has no meaning for a rank node: nothing injected.
        assert "_inject_reversed" not in function.parameters


class TestProfileCacheMinSamples:
    def test_entries_below_min_samples_are_not_served(self):
        from repro.fao.profiler import ProfileResult
        cache = ProfileCache(min_samples=2)
        profile = ProfileResult(function_name="f", variant="v", success=True,
                                runtime_s=0.001, tokens_used=10, rows_in=2, rows_out=2)
        cache.record("semantic_score", "embedding_similarity", profile)
        assert cache.get("semantic_score", "embedding_similarity") is None
        cache.record("semantic_score", "embedding_similarity", profile)
        assert cache.get("semantic_score", "embedding_similarity") is not None


class TestCLIErrorPath:
    def test_main_returns_2_on_bad_clarify(self):
        from repro.cli import main
        assert main(["--query", "x", "--clarify", "not-a-pair"]) == 2


class TestCatalogIntermediateRegistration:
    def test_register_without_stats(self, small_catalog):
        table = Table.from_rows("derived", [{"a": 1}])
        entry = small_catalog.register(table, kind="intermediate", compute_stats=False)
        assert entry.stats is None
        assert small_catalog.entry("derived").kind == "intermediate"

"""Unit tests for the unified provenance model (paper Table 3 / Figure 2)."""

import pytest

from repro.datamodel.lineage import (
    DependencyPattern,
    LINEAGE_LEVEL_OFF,
    LINEAGE_LEVEL_ROW,
    LINEAGE_LEVEL_TABLE,
    LineageStore,
)
from repro.errors import LineageError


class TestDependencyPattern:
    def test_narrow_vs_wide(self):
        assert DependencyPattern.ONE_TO_ONE.is_narrow
        assert DependencyPattern.ONE_TO_MANY.is_narrow
        assert not DependencyPattern.MANY_TO_ONE.is_narrow
        assert not DependencyPattern.MANY_TO_MANY.is_narrow

    def test_from_string(self):
        assert DependencyPattern.from_string("Many_To_Many") is DependencyPattern.MANY_TO_MANY
        with pytest.raises(LineageError):
            DependencyPattern.from_string("some_to_some")


class TestLidAllocation:
    def test_monotonically_increasing(self):
        store = LineageStore()
        lids = [store.new_lid() for _ in range(5)]
        assert lids == sorted(lids)
        assert len(set(lids)) == 5

    def test_start_lid(self):
        assert LineageStore(start_lid=100).new_lid() == 100

    def test_unknown_level_rejected(self):
        with pytest.raises(LineageError):
            LineageStore(level="everything")


class TestRecording:
    def test_record_source_and_table(self):
        store = LineageStore()
        source_lid = store.record_source("file://data/movies.json")
        table_lid = store.record_table("load_data", 1, [source_lid])
        assert store.parents_of(table_lid) == [source_lid]
        assert store.entries_for(source_lid)[0].src_uri == "file://data/movies.json"
        assert store.entries_for(source_lid)[0].parent_lid is None

    def test_record_row_chain(self):
        store = LineageStore()
        base = store.record_source("file://x")
        first = store.record_row("select_movie_columns", 1, base)
        second = store.record_row("gen_excitement_score", 1, first)
        assert store.parents_of(second) == [first]
        assert store.children_of(first) == [second]
        assert store.producing_function(second) == ("gen_excitement_score", 1)

    def test_multi_parent_table_entry(self):
        store = LineageStore()
        a = store.record_source("file://a")
        b = store.record_source("file://b")
        joined = store.record_table("join_results", 1, [a, b])
        assert sorted(store.parents_of(joined)) == sorted([a, b])
        assert len(store.entries_for(joined)) == 2

    def test_table_entry_with_no_parents(self):
        store = LineageStore()
        lid = store.record_table("load_data", 1, [None])
        assert store.parents_of(lid) == []

    def test_timestamps_are_monotonic(self):
        store = LineageStore()
        first = store.record_source("file://a")
        second = store.record_source("file://b")
        assert store.entries_for(second)[0].ts >= store.entries_for(first)[0].ts


class TestTrackingLevels:
    def test_table_level_drops_row_entries(self):
        store = LineageStore(level=LINEAGE_LEVEL_TABLE)
        assert store.enabled and not store.row_tracking_enabled
        store.record_row("f", 1, None)
        store.record_table("f", 1, [None])
        assert store.summary() == {"total": 1, "row": 0, "table": 1}

    def test_off_level_records_nothing(self):
        store = LineageStore(level=LINEAGE_LEVEL_OFF)
        assert not store.enabled
        store.record_row("f", 1, None)
        store.record_table("f", 1, [None])
        assert len(store) == 0
        # lids are still allocated so executor code paths keep working
        assert store.new_lid() > 0

    def test_row_level_records_both(self):
        store = LineageStore(level=LINEAGE_LEVEL_ROW)
        store.record_row("f", 1, None)
        store.record_table("f", 1, [None])
        assert store.summary()["total"] == 2


class TestTraceAndAncestors:
    def _build_chain(self):
        store = LineageStore()
        source = store.record_source("file://movies")
        table = store.record_table("load_data", 1, [source])
        row_a = store.record_row("select", 1, table)
        row_b = store.record_row("score", 1, row_a)
        return store, source, table, row_a, row_b

    def test_trace_returns_child_first_chain(self):
        store, source, table, row_a, row_b = self._build_chain()
        trace = store.trace(row_b)
        assert trace[0].lid == row_b
        assert {entry.lid for entry in trace} == {row_b, row_a, table, source}

    def test_ancestors_are_ordered_nearest_first(self):
        store, source, table, row_a, row_b = self._build_chain()
        assert store.ancestors_of(row_b) == [row_a, table, source]

    def test_trace_unknown_lid(self):
        store = LineageStore()
        with pytest.raises(LineageError):
            store.trace(999)

    def test_trace_respects_max_depth(self):
        store = LineageStore()
        parent = store.record_source("file://root")
        current = parent
        for _ in range(10):
            current = store.record_row("step", 1, current)
        shallow = store.trace(current, max_depth=3)
        assert len(shallow) <= 3

    def test_has_lid(self):
        store, source, *_ = self._build_chain()
        assert store.has_lid(source)
        assert not store.has_lid(10_000)


class TestExportAsTable:
    def test_to_table_matches_schema(self):
        store = LineageStore()
        source = store.record_source("file://movies")
        store.record_row("select", 1, source)
        table = store.to_table()
        assert table.column_names() == [
            "lid", "parent_lid", "src_uri", "func_id", "ver_id", "data_type", "ts"]
        assert len(table) == 2

    def test_lineage_table_is_sql_queryable(self):
        from repro.relational.catalog import Catalog
        from repro.relational.sql import execute_sql

        store = LineageStore()
        source = store.record_source("file://movies")
        store.record_row("gen_excitement_score", 2, source)
        catalog = Catalog()
        catalog.register(store.to_table("lineage"))
        result = execute_sql(
            "SELECT lid, ver_id FROM lineage WHERE func_id = 'gen_excitement_score'", catalog)
        assert len(result) == 1 and result[0]["ver_id"] == 2

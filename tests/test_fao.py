"""Unit tests for the FAO layer: signatures, functions, registry, library, agents."""

import pytest

from repro.datamodel.lineage import DependencyPattern
from repro.errors import FunctionExecutionError, FunctionGenerationError
from repro.fao.codegen import Coder, FAULT_SEMANTIC_REVERSED, FAULT_SYNTACTIC_FRAGILE
from repro.fao.critic import Critic
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.library import ImplementationLibrary
from repro.fao.profiler import Profiler
from repro.fao.registry import FunctionRegistry
from repro.fao.signature import FunctionSignature
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.catalog import Catalog
from repro.relational.table import Table


@pytest.fixture()
def fao_models():
    return ModelSuite.create(seed=5)


@pytest.fixture()
def films_table():
    return Table.from_rows("films_with_text_entities", [
        {"movie_id": 1, "title": "Guilty by Suspicion", "year": 1991,
         "entity_terms": ["accused", "threat", "interrogation", "killed"],
         "object_classes": ["person", "suit"], "n_objects": 2,
         "saturation": 0.05, "color_variance": 100.0, "coverage": 0.2, "image_uri": "a.png"},
        {"movie_id": 2, "title": "Clean and Sober", "year": 1988,
         "entity_terms": ["dead", "threatened", "attack", "support"],
         "object_classes": ["person"], "n_objects": 1,
         "saturation": 0.02, "color_variance": 50.0, "coverage": 0.1, "image_uri": "b.png"},
        {"movie_id": 3, "title": "Midnight Circuit", "year": 2019,
         "entity_terms": ["garden", "tea", "dinner"],
         "object_classes": ["explosion", "gun", "car", "fire", "crowd"], "n_objects": 5,
         "saturation": 0.8, "color_variance": 4000.0, "coverage": 0.7, "image_uri": "c.png"},
    ])


def make_node(name, description="", inputs=None, output="out", pattern="one_to_one", **params):
    return LogicalPlanNode(name=name, description=description or name,
                           inputs=inputs or ["films_with_text_entities"], output=output,
                           dependency_pattern=pattern, parameters=params)


def make_context(models):
    return FunctionContext(models=models, catalog=Catalog())


class TestSignatureAndRegistry:
    def test_signature_from_node(self):
        node = make_node("classify_boring", inputs=["films_with_image_scene"],
                         output="films_with_boring_flag")
        signature = FunctionSignature.from_node(node)
        assert signature.to_dict()["inputs"] == ["films_with_image_scene"]
        assert "classify_boring" in signature.describe()

    def test_registry_versioning(self, fao_models, tmp_path):
        registry = FunctionRegistry(workspace=tmp_path)
        node = make_node("gen_excitement_score", score_column="excitement_score",
                         concept="excitement", keywords=["gun"])
        coder = Coder(fao_models)
        first = registry.register(coder.generate(node))
        second = registry.register(coder.generate(node))
        assert (first.version, second.version) == (1, 2)
        assert registry.latest("gen_excitement_score") is second
        assert registry.get("gen_excitement_score", 1) is first
        assert registry.rollback("gen_excitement_score") is first
        assert registry.total_versions() == 2
        # Both versions are persisted to disk.
        files = list((tmp_path / "gen_excitement_score").glob("*"))
        assert len(files) == 4  # two source files + two metadata files

    def test_registry_unknown_lookups(self):
        registry = FunctionRegistry()
        with pytest.raises(FunctionGenerationError):
            registry.latest("ghost")
        with pytest.raises(FunctionGenerationError):
            registry.get("ghost", 1)
        node_fn = GeneratedFunction(
            signature=FunctionSignature("only", "", (), "out"),
            body=lambda inputs, context: Table.from_rows("out", [{"a": 1}]),
            source_text="def only(): ...")
        registry.register(node_fn)
        with pytest.raises(FunctionGenerationError):
            registry.rollback("only")
        assert "only" in registry.describe()


class TestLibraryClassification:
    def test_families_cover_flagship_nodes(self):
        library = ImplementationLibrary()
        cases = {
            "select_movie_columns": "select_columns",
            "join_text_entities": "join_text",
            "join_image_scene": "join_images",
            "join_results": "join_results",
            "gen_recency_score": "recency_score",
            "combine_scores": "combine_scores",
            "rank_films": "rank",
            "project_result": "project_result",
        }
        for name, family in cases.items():
            node = make_node(name, score_column="s") if name.startswith("gen_") else make_node(name)
            assert library.classify_node(node) == family

    def test_parameter_driven_families(self):
        library = ImplementationLibrary()
        assert library.classify_node(make_node("gen_excitement_score", concept="excitement",
                                               score_column="excitement_score")) == "semantic_score"
        assert library.classify_node(make_node("filter_boring", flag_column="boring_poster")) == \
            "flag_filter"
        assert library.classify_node(make_node("filter_excitement_score", threshold=0.4,
                                               score_column="excitement_score")) == "score_filter"
        assert library.classify_node(make_node("filter_year_0", op=">", column="year",
                                               value=2000)) == "relational_filter"
        assert library.classify_node(make_node("fused_gen", sub_specs=[{}])) == "fused_scores"

    def test_unknown_node_rejected(self):
        with pytest.raises(FunctionGenerationError):
            ImplementationLibrary().classify_node(make_node("mystery_operator"))

    def test_candidates_sorted_by_accuracy(self):
        library = ImplementationLibrary()
        variants = library.candidates("classify_image")
        assert [v.variant for v in variants] == ["vlm_query", "cascade", "scene_statistics"]
        with pytest.raises(FunctionGenerationError):
            library.candidates("nonexistent_family")


class TestGeneratedImplementations:
    def test_semantic_score_embedding(self, fao_models, films_table):
        node = make_node("gen_excitement_score", score_column="excitement_score",
                         concept="excitement",
                         keywords=["gun", "murder", "attack", "threat", "accused", "killed"])
        function = Coder(fao_models).generate(node, variant="embedding_similarity")
        output = function.execute({"films_with_text_entities": films_table},
                                  make_context(fao_models))
        scores = {row["title"]: row["excitement_score"] for row in output}
        assert scores["Guilty by Suspicion"] > scores["Midnight Circuit"]
        assert all(0.0 <= score <= 1.0 for score in scores.values())

    def test_semantic_score_keyword_variant_is_cheaper(self, fao_models, films_table):
        node = make_node("gen_excitement_score", score_column="excitement_score",
                         concept="excitement", keywords=["accused", "threat"])
        coder = Coder(fao_models)
        cheap = coder.generate(node, variant="keyword_overlap")
        expensive = coder.generate(node, variant="embedding_similarity")
        assert cheap.cost_per_row_tokens < expensive.cost_per_row_tokens
        assert cheap.accuracy_prior < expensive.accuracy_prior

    def test_recency_score_normalization(self, fao_models, films_table):
        node = make_node("gen_recency_score", score_column="recency_score", year_column="year")
        function = Coder(fao_models).generate(node)
        output = function.execute({"films_with_text_entities": films_table},
                                  make_context(fao_models))
        by_title = {row["title"]: row["recency_score"] for row in output}
        assert by_title["Midnight Circuit"] == 1.0
        assert by_title["Clean and Sober"] == 0.0

    def test_combine_scores_weighted_sum(self, fao_models):
        table = Table.from_rows("scores", [
            {"movie_id": 1, "excitement_score": 1.0, "recency_score": 0.5}])
        node = make_node("combine_scores", inputs=["scores"], output="combined",
                         weights={"excitement_score": 0.7, "recency_score": 0.3},
                         output_column="final_score", input_columns=["excitement_score",
                                                                     "recency_score"])
        function = Coder(fao_models).generate(node)
        output = function.execute({"scores": table}, make_context(fao_models))
        assert output[0]["final_score"] == pytest.approx(0.85)

    def test_combine_scores_defaults_to_score_columns(self, fao_models):
        table = Table.from_rows("scores", [{"a_score": 0.4, "b_score": 0.6}])
        node = make_node("combine_scores", inputs=["scores"], output="combined",
                         output_column="final_score")
        output = Coder(fao_models).generate(node).execute({"scores": table},
                                                          make_context(fao_models))
        assert output[0]["final_score"] == pytest.approx(0.5)

    def test_classify_boring_scene_statistics(self, fao_models, films_table):
        node = make_node("classify_boring", inputs=["films_with_text_entities"],
                         output="flagged", flag_column="boring_poster", concept="boring_visual")
        function = Coder(fao_models).generate(node, variant="scene_statistics")
        output = function.execute({"films_with_text_entities": films_table},
                                  make_context(fao_models))
        flags = {row["title"]: row["boring_poster"] for row in output}
        assert flags["Guilty by Suspicion"] is True
        assert flags["Midnight Circuit"] is False

    def test_flag_and_score_and_relational_filters(self, fao_models, films_table):
        context = make_context(fao_models)
        flagged = Table.from_rows("flagged", [
            {"movie_id": 1, "boring_poster": True}, {"movie_id": 3, "boring_poster": False}])
        keep = Coder(fao_models).generate(
            make_node("filter_boring", inputs=["flagged"], output="kept",
                      flag_column="boring_poster", keep_if_true=True))
        assert [r["movie_id"] for r in keep.execute({"flagged": flagged}, context)] == [1]

        scored = Table.from_rows("scored", [{"movie_id": 1, "excitement_score": 0.9},
                                            {"movie_id": 2, "excitement_score": 0.1}])
        threshold = Coder(fao_models).generate(
            make_node("filter_excitement_score", inputs=["scored"], output="kept2",
                      score_column="excitement_score", threshold=0.4))
        assert len(threshold.execute({"scored": scored}, context)) == 1

        relational = Coder(fao_models).generate(
            make_node("filter_year_0", inputs=["films_with_text_entities"], output="kept3",
                      column="year", op=">", value=1990))
        assert len(relational.execute({"films_with_text_entities": films_table}, context)) == 2

    def test_relational_filter_unknown_operator(self, fao_models):
        with pytest.raises(FunctionGenerationError):
            Coder(fao_models).generate(
                make_node("filter_year_0", column="year", op="~", value=1))

    def test_join_results_drops_right_duplicates(self, fao_models):
        left = Table.from_rows("left_t", [{"movie_id": 1, "title": "A", "final_score": 0.9}])
        right = Table.from_rows("right_t", [{"movie_id": 1, "title": "A", "boring_poster": True}])
        node = make_node("join_results", inputs=["left_t", "right_t"], output="joined",
                         join_key="movie_id", pattern="many_to_many")
        output = Coder(fao_models).generate(node).execute({"left_t": left, "right_t": right},
                                                          make_context(fao_models))
        assert len(output) == 1
        assert not any(name.endswith("_right") for name in output.column_names())

    def test_rank_falls_back_to_score_column(self, fao_models):
        table = Table.from_rows("t", [{"a_score": 0.2}, {"a_score": 0.9}])
        node = make_node("rank_films", inputs=["t"], output="ranked",
                         sort_column="missing_column", descending=True, pattern="many_to_one")
        output = Coder(fao_models).generate(node).execute({"t": table}, make_context(fao_models))
        assert output[0]["a_score"] == 0.9

    def test_missing_input_raises_execution_error(self, fao_models):
        node = make_node("select_movie_columns", inputs=["movie_table"], output="films_base",
                         columns=["movie_id"])
        function = Coder(fao_models).generate(node)
        with pytest.raises(FunctionExecutionError):
            function.execute({}, make_context(fao_models))


class TestCoderFaultsAndRepair:
    def test_semantic_fault_injection_and_repair(self, fao_models, films_table):
        coder = Coder(fao_models, fault_injection={"gen_recency_score": FAULT_SEMANTIC_REVERSED})
        node = make_node("gen_recency_score", score_column="recency_score", year_column="year")
        buggy = coder.generate(node)
        output = buggy.execute({"films_with_text_entities": films_table},
                               make_context(fao_models))
        by_title = {row["title"]: row["recency_score"] for row in output}
        assert by_title["Clean and Sober"] == 1.0  # reversed!
        repaired = coder.repair(node, buggy, "recency_score decreases as year increases")
        fixed = repaired.execute({"films_with_text_entities": films_table},
                                 make_context(fao_models))
        assert {row["title"]: row["recency_score"] for row in fixed}["Midnight Circuit"] == 1.0
        assert "patched" in repaired.source_text

    def test_syntactic_fault_injection_and_repair(self, fao_models, films_table):
        heic = films_table.copy()
        heic.rows[0]["image_uri"] = "poster.heic"
        coder = Coder(fao_models, fault_injection={"classify_boring": FAULT_SYNTACTIC_FRAGILE})
        node = make_node("classify_boring", inputs=["films_with_text_entities"], output="flagged",
                         flag_column="boring_poster", concept="boring_visual")
        fragile = coder.generate(node, variant="scene_statistics")
        with pytest.raises(FunctionExecutionError):
            fragile.execute({"films_with_text_entities": heic}, make_context(fao_models))
        repaired = coder.repair(node, fragile, "unsupported image format: poster.heic")
        assert len(repaired.execute({"films_with_text_entities": heic},
                                    make_context(fao_models))) == 3

    def test_unknown_variant_rejected(self, fao_models):
        with pytest.raises(FunctionGenerationError):
            Coder(fao_models).generate(make_node("rank_films", pattern="many_to_one"),
                                       variant="quantum_sort")

    def test_generation_charges_tokens(self, fao_models):
        before = fao_models.cost_meter.total_tokens
        Coder(fao_models).generate(make_node("rank_films", pattern="many_to_one"))
        assert fao_models.cost_meter.total_tokens > before


class TestProfilerAndCritic:
    def test_profiler_success(self, fao_models, films_table):
        node = make_node("gen_recency_score", score_column="recency_score", year_column="year")
        function = Coder(fao_models).generate(node)
        profile = Profiler(fao_models, sample_size=2).profile(
            function, {"films_with_text_entities": films_table}, make_context(fao_models))
        assert profile.success
        assert profile.rows_in == 2 and profile.rows_out == 2
        assert profile.runtime_s >= 0.0
        assert "ok" in profile.describe()

    def test_profiler_captures_failure(self, fao_models, films_table):
        coder = Coder(fao_models, fault_injection={"classify_boring": FAULT_SYNTACTIC_FRAGILE})
        heic = films_table.copy()
        for row in heic.rows:
            row["image_uri"] = "x.heic"
        node = make_node("classify_boring", inputs=["films_with_text_entities"], output="flagged",
                         flag_column="boring_poster", concept="boring_visual")
        profile = Profiler(fao_models).profile(
            coder.generate(node, variant="scene_statistics"),
            {"films_with_text_entities": heic}, make_context(fao_models))
        assert not profile.success
        assert "unsupported image format" in profile.error

    def test_critic_accepts_good_function(self, fao_models, films_table):
        node = make_node("gen_recency_score", score_column="recency_score", year_column="year")
        function = Coder(fao_models).generate(node)
        profile = Profiler(fao_models).profile(function, {"films_with_text_entities": films_table},
                                               make_context(fao_models))
        verdict = Critic(fao_models).review(function, profile, node)
        assert verdict.ok and verdict.checked_semantics

    def test_critic_repairs_reversed_recency(self, fao_models, films_table):
        coder = Coder(fao_models, fault_injection={"gen_recency_score": FAULT_SEMANTIC_REVERSED})
        node = make_node("gen_recency_score",
                         description="Assign a recency score based on release year",
                         score_column="recency_score", year_column="year")
        registry = FunctionRegistry()
        buggy = registry.register(coder.generate(node))
        critic = Critic(fao_models)
        inputs = {"films_with_text_entities": films_table}
        fixed, profile, rounds, verdict = critic.review_and_repair(
            node, buggy, inputs, make_context(fao_models), coder, Profiler(fao_models),
            registry=registry)
        assert verdict.ok
        assert rounds >= 1
        assert fixed.version > buggy.version
        output = fixed.execute(inputs, make_context(fao_models))
        assert {r["title"]: r["recency_score"] for r in output}["Midnight Circuit"] == 1.0

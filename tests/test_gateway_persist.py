"""Tests for the persistent gateway cache (codec, store, restart round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.service import KathDBService
from repro.cli import parse_gateway_cache
from repro.core.config import KathDBConfig
from repro.data.mmqa import build_movie_corpus
from repro.errors import KathDBError
from repro.gateway.fingerprint import request_key
from repro.gateway.persist import (
    GatewayCacheStore,
    UnpersistableResult,
    decode_value,
    encode_value,
)
from repro.gateway.semantic import SemanticNearCache, term_signature
from repro.models.ner import ExtractedEntity, ExtractionResult
from repro.skills.backends import MemoryBackend, backend_from_spec


# -- codec -----------------------------------------------------------------------------

class TestCodec:
    def test_primitives_round_trip(self):
        for value in (None, True, False, 0, -3, 2.5, "text", ""):
            assert decode_value(encode_value(value)) == value

    def test_containers_round_trip(self):
        value = {"a": [1, 2.0, "x"], "b": (True, None), "c": {7, 8},
                 "nested": {"deep": [(1,), {2}]}}
        restored = decode_value(encode_value(value))
        assert restored == value
        assert isinstance(restored["b"], tuple)
        assert isinstance(restored["c"], set)

    def test_bytes_and_ndarray_round_trip(self):
        blob = b"\x00\x01binary"
        assert decode_value(encode_value(blob)) == blob
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        restored = decode_value(encode_value(array))
        assert isinstance(restored, np.ndarray)
        assert restored.dtype == array.dtype
        assert np.array_equal(restored, array)

    def test_repro_dataclass_round_trips(self):
        result = ExtractionResult(entities=[
            ExtractedEntity(entity_id=0, class_name="person",
                            canonical="Alice")])
        restored = decode_value(encode_value(result))
        assert isinstance(restored, ExtractionResult)
        assert restored == result

    def test_foreign_types_raise(self):
        class NotOurs:
            pass

        with pytest.raises(UnpersistableResult):
            encode_value(NotOurs())

    def test_foreign_dataclass_rejected_on_decode(self):
        encoded = {"__kathdb__": "dataclass", "type": "os:path",
                   "fields": {}}
        with pytest.raises(UnpersistableResult):
            decode_value(encoded)


# -- the store -------------------------------------------------------------------------

class TestGatewayCacheStore:
    def test_exact_entries_round_trip(self):
        store = GatewayCacheStore(MemoryBackend())
        key = request_key("ner", "extract", ("some text",), {})
        assert store.put_exact(key, {"answer": [1, 2]}, token_cost=37)
        loaded = list(store.load_exact())
        assert loaded == [(key, {"answer": [1, 2]}, 37)]
        assert store.stats.persisted == 1
        assert store.stats.restored == 1

    def test_unpersistable_results_are_skipped_not_raised(self):
        store = GatewayCacheStore(MemoryBackend())
        key = request_key("llm", "complete", ("q",), {})
        assert not store.put_exact(key, object(), token_cost=5)
        assert store.stats.skipped == 1
        assert list(store.load_exact()) == []

    def test_semantic_entries_round_trip(self):
        store = GatewayCacheStore(MemoryBackend())
        group = ("embedding", "match_fraction", "lex0", "()")
        signature = term_signature(["gun", "chase"], ["murder"])
        store.put_semantic(group, signature, 0.75, token_cost=12)
        loaded = store.load_semantic()
        assert loaded == [(group, signature, 0.75, 12)]

    def test_clear_and_close(self, tmp_path):
        store = GatewayCacheStore(backend_from_spec("file", tmp_path / "gw"))
        key = request_key("m", "f", (1,), {})
        store.put_exact(key, "result", 1)
        assert store.clear() == 1
        assert list(store.load_exact()) == []
        store.close()
        store.close()  # idempotent


# -- service wiring --------------------------------------------------------------------

def file_config(path, **overrides):
    return KathDBConfig(seed=7, simulate_model_latency=0.0,
                        gateway_cache_backend="file",
                        gateway_cache_path=path, **overrides)


class TestServiceWiring:
    def test_memory_backend_builds_no_store(self):
        service = KathDBService(KathDBConfig())
        assert service.gateway_store is None
        service.shutdown()

    def test_config_promotes_path_to_file_backend(self, tmp_path):
        config = KathDBConfig(gateway_cache_path=tmp_path / "gw")
        assert config.gateway_cache_backend == "file"

    def test_config_rejects_pathless_persistent_backend(self):
        with pytest.raises(KathDBError):
            KathDBConfig(gateway_cache_backend="sqlite")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(KathDBError):
            KathDBConfig(gateway_cache_backend="redis",
                         gateway_cache_path="/tmp/x")

    def test_parse_gateway_cache_specs(self):
        assert parse_gateway_cache("memory") == {
            "gateway_cache_backend": "memory"}
        assert parse_gateway_cache("file:/tmp/gw") == {
            "gateway_cache_backend": "file", "gateway_cache_path": "/tmp/gw"}
        with pytest.raises(ValueError):
            parse_gateway_cache("sqlite")
        with pytest.raises(ValueError):
            parse_gateway_cache("redis:/tmp/x")

    def test_volatile_entries_never_persist(self, tmp_path):
        service = KathDBService(file_config(tmp_path / "gw"))
        client = service.gateway.client("t")
        image = build_movie_corpus(size=1, seed=7).movies[0].poster
        client.invoke(service.models.vlm, "extract_scene_graph", (image,))
        # URI-keyed request: cached in memory, skipped by the store.
        assert len(service.gateway.cache) == 1
        assert service.gateway_store.stats.persisted == 0
        service.shutdown()

    def test_full_clear_wipes_the_store(self, tmp_path):
        service = KathDBService(file_config(tmp_path / "gw"))
        client = service.gateway.client("t")
        client.invoke(service.models.ner, "extract", ("Alice met Bob.",))
        assert service.gateway_store.stats.persisted == 1
        service.gateway.clear()
        assert list(service.gateway_store.load_exact()) == []
        service.shutdown()


# -- restart round-trip (satellite: warm hits + rebuilt ANN index) ---------------------

class TestRestartRoundTrip:
    def test_exact_hits_survive_a_service_restart(self, tmp_path):
        corpus = build_movie_corpus(size=6, seed=7)
        cold = KathDBService(file_config(tmp_path / "gw"))
        cold.load_corpus(corpus)
        cold_tokens = cold.total_tokens()
        assert cold.gateway_store.stats.persisted > 0
        cold.shutdown()

        warm = KathDBService(file_config(tmp_path / "gw"))
        assert warm.gateway_store.stats.restored > 0
        assert len(warm.gateway.cache) > 0
        warm.load_corpus(corpus)
        # Text-keyed population calls (NER batches) hit the restored cache;
        # URI-keyed VLM calls are volatile and re-execute by design.
        assert warm.gateway.cache.stats.hits > 0
        assert warm.total_tokens() < cold_tokens
        warm.shutdown()

    def test_semantic_index_rebuilds_with_zero_false_accepts(self, tmp_path):
        store = GatewayCacheStore(backend_from_spec("file", tmp_path / "gw"))
        first = SemanticNearCache(threshold=0.999, mode="ann", store=store)
        group = ("embedding", "match_fraction", "lex", "()")
        stored_signature = term_signature(["gun", "murder", "chase"],
                                          ["thriller"])
        vector = first.embed_signature(stored_signature)
        first.put(group, vector, stored_signature, 0.8, token_cost=25)

        rebuilt = SemanticNearCache(threshold=0.999, mode="ann", store=store)
        assert rebuilt.restore_persisted() == 1
        occupancy = rebuilt.index.as_dict()
        assert occupancy["entries"] == 1
        assert occupancy["buckets"] > 0
        # The identical signature is served through the rebuilt index ...
        hit = rebuilt.lookup(group, rebuilt.embed_signature(stored_signature),
                             stored_signature)
        assert hit is not None and hit.result == 0.8
        # ... while dissimilar requests fall back at the 0.999 threshold:
        # a restored entry must never be a false accept.
        for terms in (["sunset", "romance"], ["paperwork"], ["gun"]):
            other = term_signature(terms, ["thriller"])
            assert rebuilt.lookup(group, rebuilt.embed_signature(other),
                                  other) is None
        store.close()

    def test_corpus_reload_restores_persisted_semantic_entries(self, tmp_path):
        service = KathDBService(file_config(tmp_path / "gw"))
        signature = term_signature(["gun"], ["thriller"])
        group = ("embedding", "match_fraction", "lex", "()")
        vector = service.gateway.semantic.embed_signature(signature)
        service.gateway.semantic.put(group, vector, signature, 0.5,
                                     token_cost=10)
        service.gateway.clear(volatile_only=True)
        # The volatile clear wiped the tier, then restored it from the store:
        # persisted signatures fully determine their answers.
        assert service.gateway.semantic.stats.entries == 1
        assert service.gateway.semantic.lookup(group, vector,
                                               signature) is not None
        service.shutdown()

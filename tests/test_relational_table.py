"""Unit tests for the row-oriented Table."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture()
def movies():
    return Table.from_rows("movies", [
        {"movie_id": 1, "title": "Guilty by Suspicion", "year": 1991, "score": 0.99},
        {"movie_id": 2, "title": "Clean and Sober", "year": 1988, "score": 0.97},
        {"movie_id": 3, "title": "Old Film", "year": 1950, "score": 0.20},
        {"movie_id": 4, "title": "No Score", "year": 2005, "score": None},
    ])


class TestConstruction:
    def test_from_rows_infers_schema(self, movies):
        assert movies.schema.column("year").data_type is DataType.INTEGER
        assert len(movies) == 4

    def test_from_rows_empty_without_schema_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows("empty", [])

    def test_empty_table_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", Schema.of(("a", "int")))

    def test_copy_is_independent(self, movies):
        clone = movies.copy("clone")
        clone.rows[0]["title"] = "changed"
        assert movies[0]["title"] == "Guilty by Suspicion"
        assert clone.name == "clone"


class TestMutation:
    def test_insert_validates_and_coerces(self, movies):
        stored = movies.insert({"movie_id": "5", "title": "New", "year": "2020", "score": 0.5})
        assert stored["movie_id"] == 5 and stored["year"] == 2020

    def test_insert_unknown_column_rejected(self, movies):
        with pytest.raises(SchemaError):
            movies.insert({"movie_id": 6, "director": "someone"})

    def test_delete_where(self, movies):
        removed = movies.delete_where(lambda row: row["year"] < 1980)
        assert removed == 1 and len(movies) == 3

    def test_update_where(self, movies):
        updated = movies.update_where(lambda row: row["movie_id"] == 2, {"score": 0.5})
        assert updated == 1
        assert movies.where(lambda r: r["movie_id"] == 2)[0]["score"] == 0.5

    def test_update_unknown_column(self, movies):
        with pytest.raises(UnknownColumnError):
            movies.update_where(lambda row: True, {"bogus": 1})

    def test_add_column_with_compute(self, movies):
        movies.add_column(Column("decade", DataType.INTEGER),
                          compute=lambda row: (row["year"] // 10) * 10)
        assert movies[0]["decade"] == 1990

    def test_add_existing_column_rejected(self, movies):
        with pytest.raises(SchemaError):
            movies.add_column(Column("year", DataType.INTEGER))

    def test_truncate(self, movies):
        movies.truncate()
        assert len(movies) == 0


class TestQueries:
    def test_head_returns_copies(self, movies):
        head = movies.head(2)
        head[0]["title"] = "mutated"
        assert movies[0]["title"] == "Guilty by Suspicion"

    def test_column_values_and_distinct(self, movies):
        assert movies.column_values("year") == [1991, 1988, 1950, 2005]
        movies.insert({"movie_id": 5, "title": "Dup", "year": 1991, "score": 0.1})
        assert movies.distinct_values("year") == [1991, 1988, 1950, 2005]

    def test_where(self, movies):
        recent = movies.where(lambda row: row["year"] > 1980)
        assert len(recent) == 3

    def test_order_by_with_nulls_first(self, movies):
        ordered = movies.order_by("score")
        assert ordered[0]["score"] is None
        assert ordered[-1]["score"] == 0.99

    def test_order_by_descending(self, movies):
        ordered = movies.order_by("year", descending=True)
        assert [r["year"] for r in ordered][:2] == [2005, 1991]

    def test_select_columns(self, movies):
        projected = movies.select_columns(["title", "year"])
        assert projected.column_names() == ["title", "year"]
        assert len(projected) == len(movies)

    def test_statistics(self, movies):
        assert movies.null_fraction("score") == 0.25
        assert movies.cardinality("movie_id") == 4


class TestSerialization:
    def test_roundtrip(self, movies):
        restored = Table.from_dict(movies.to_dict())
        assert restored.column_names() == movies.column_names()
        assert len(restored) == len(movies)
        assert restored[0]["title"] == "Guilty by Suspicion"

    def test_blob_columns_become_markers(self):
        table = Table("blobs", Schema([Column("id", DataType.INTEGER),
                                       Column("payload", DataType.BLOB)]))
        table.insert({"id": 1, "payload": object()})
        payload = table.to_dict()["rows"][0]["payload"]
        assert payload["__blob__"] is True
        restored = Table.from_dict(table.to_dict())
        assert restored[0]["payload"] is None

    def test_pretty_renders_all_columns(self, movies):
        rendered = movies.pretty(limit=2)
        assert "title" in rendered and "Guilty by Suspicion" in rendered
        assert "more rows" in rendered

"""Tests for the extension features: profile cache, cascade classifier,
function roll-backs / plan re-runs, and the command-line interface."""

import pytest

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.cli import build_arg_parser, build_user, parse_clarifications, run
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.fao.profiler import ProfileResult
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel
from repro.interaction.user import ConsoleUser, ScriptedUser as ScriptedUserAgent, SilentUser
from repro.optimizer.optimizer import QueryOptimizer
from repro.optimizer.profile_cache import CachedProfile, ProfileCache


def make_profile(tokens=120, rows=4, success=True, runtime=0.004):
    return ProfileResult(function_name="f", variant="v", success=success,
                         runtime_s=runtime, tokens_used=tokens, rows_in=rows, rows_out=rows)


class TestProfileCache:
    def test_record_and_get(self):
        cache = ProfileCache()
        assert cache.get("semantic_score", "embedding_similarity") is None
        cache.record("semantic_score", "embedding_similarity", make_profile())
        entry = cache.get("semantic_score", "embedding_similarity")
        assert entry is not None
        assert entry.tokens_per_row == pytest.approx(30.0)
        assert cache.hits == 1 and cache.misses == 1

    def test_update_averages_over_samples(self):
        entry = CachedProfile()
        entry.update(make_profile(tokens=100, rows=4))
        entry.update(make_profile(tokens=200, rows=4))
        assert entry.samples == 2
        assert entry.tokens_per_row == pytest.approx(37.5)

    def test_failed_profiles_lower_success_rate(self):
        entry = CachedProfile()
        entry.update(make_profile(success=False))
        assert entry.success_rate == 0.0
        assert not entry.as_profile("f", "v", 10).success

    def test_as_profile_scales_to_row_count(self):
        entry = CachedProfile(tokens_per_row=5.0, runtime_per_row_s=0.001,
                              success_rate=1.0, samples=3)
        synthetic = entry.as_profile("gen_excitement_score", "embedding_similarity", 20)
        assert synthetic.tokens_used == 100
        assert synthetic.rows_in == 20 and synthetic.success

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "profiles.json"
        cache = ProfileCache(path=path)
        cache.record("classify_image", "scene_statistics", make_profile(tokens=40))
        cache.save()
        reloaded = ProfileCache(path=path)
        assert len(reloaded) == 1
        assert ("classify_image", "scene_statistics") in reloaded
        assert reloaded.get("classify_image", "scene_statistics").tokens_per_row > 0

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            ProfileCache().save()

    def test_describe(self):
        cache = ProfileCache()
        cache.record("rank", "sort_descending", make_profile())
        assert "rank/sort_descending" in cache.describe()


class TestOfflineProfilingInOptimizer:
    def test_second_optimization_reuses_cached_profiles(self, corpus):
        db = KathDB(KathDBConfig(seed=5, enable_profile_cache=True))
        db.load_corpus(corpus)
        channel = InteractionChannel(ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                                  [FLAGSHIP_CORRECTION]))
        _, plan, _ = db.parse_and_plan(FLAGSHIP_QUERY, channel)

        _, first_report = db.optimizer.optimize(plan)
        _, second_report = db.optimizer.optimize(plan)
        assert first_report.profile_cache_hits == 0
        assert second_report.profile_cache_hits == second_report.candidates_evaluated
        assert second_report.chosen_variants == first_report.chosen_variants
        assert db.profile_cache is not None and len(db.profile_cache) > 0

    def test_cache_disabled_by_default(self, corpus):
        db = KathDB(KathDBConfig(seed=5))
        assert db.profile_cache is None


class TestCascadeClassifier:
    @pytest.fixture(scope="class")
    def cascade_db(self, corpus):
        db = KathDB(KathDBConfig(seed=9, explore_variants=False,
                                 variant_overrides={"classify_boring": "cascade"}))
        db.load_corpus(corpus)
        return db

    def test_cascade_variant_selected_and_correct(self, cascade_db, corpus):
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
        result = cascade_db.query(FLAGSHIP_QUERY, user=user)
        record = result.record_for("classify_boring")
        assert record.function_variant == "cascade"
        assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]
        # Classification accuracy against ground truth stays high.
        truth = corpus.ground_truth_boring()
        flagged = result.intermediates["films_with_boring_flag"]
        correct = sum(1 for row in flagged
                      if bool(row["boring_poster"]) == truth[row["movie_id"]])
        assert correct / len(flagged) >= 0.9

    def test_cascade_cheaper_than_vlm_query(self, corpus):
        costs = {}
        for variant in ("cascade", "vlm_query"):
            db = KathDB(KathDBConfig(seed=9, explore_variants=False,
                                     variant_overrides={"classify_boring": variant}))
            db.load_corpus(corpus)
            user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
            result = db.query(FLAGSHIP_QUERY, user=user)
            costs[variant] = result.record_for("classify_boring").tokens
        assert costs["cascade"] < costs["vlm_query"]


class TestRollbackAndRerun:
    @pytest.fixture(scope="class")
    def rollback_db(self, corpus):
        db = KathDB(KathDBConfig(seed=4))
        db.load_corpus(corpus)
        user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
        result = db.query(FLAGSHIP_QUERY, user=user)
        return db, result

    def test_rollback_returns_previous_version(self, rollback_db):
        db, _ = rollback_db
        assert db.registry.version_count("gen_excitement_score") >= 2
        previous = db.rollback_function("gen_excitement_score")
        latest = db.registry.latest("gen_excitement_score")
        assert previous.version == latest.version - 1

    def test_rerun_with_alternate_version_changes_scores(self, rollback_db):
        db, original = rollback_db
        versions = db.registry.versions("gen_excitement_score")
        keyword_version = next(f for f in versions if f.variant == "keyword_overlap")
        rerun = db.rerun_with_versions(original,
                                       {"gen_excitement_score": keyword_version.version})
        assert rerun.record_for("gen_excitement_score").function_variant == "keyword_overlap"
        original_scores = {r["title"]: r["excitement_score"]
                           for r in original.intermediates["films_with_excitement"]}
        rerun_scores = {r["title"]: r["excitement_score"]
                        for r in rerun.intermediates["films_with_excitement"]}
        assert original_scores != rerun_scores
        # Unmentioned operators keep their chosen implementations.
        assert rerun.record_for("classify_boring").function_variant == \
            original.record_for("classify_boring").function_variant

    def test_rerun_requires_a_result(self, corpus):
        db = KathDB(KathDBConfig(seed=4))
        with pytest.raises(ValueError):
            db.rerun_with_versions(None, {})

    def test_rerun_preserves_the_source_transcript(self, rollback_db):
        # Regression: the rerun used to build a fresh InteractionChannel with
        # no transcript, silently dropping the original query's clarification
        # and correction history (and any recorded explanations).
        db, original = rollback_db
        original_turns = original.transcript.user_turns()
        assert original_turns > 0
        rerun = db.rerun_with_versions(original)
        assert rerun.transcript is original.transcript
        assert rerun.transcript.user_turns() >= original_turns
        clarifications = [i for i in rerun.transcript
                          if "exciting" in (i.metadata or {}).get("term", "")]
        assert clarifications, "the original clarification must survive the rerun"


class TestCLI:
    def test_parse_clarifications(self):
        parsed = parse_clarifications(["exciting=uncommon scenes", "boring=plain posters"])
        assert parsed == {"exciting": "uncommon scenes", "boring": "plain posters"}
        with pytest.raises(ValueError):
            parse_clarifications(["no-equals-sign"])

    def test_build_user_variants(self):
        parser = build_arg_parser()
        assert isinstance(build_user(parser.parse_args(["--flagship"])), ScriptedUserAgent)
        assert isinstance(build_user(parser.parse_args(["--query", "x"])), SilentUser)
        assert isinstance(build_user(parser.parse_args(
            ["--query", "x", "--clarify", "a=b"])), ScriptedUserAgent)
        assert isinstance(build_user(parser.parse_args(
            ["--query", "x", "--interactive"])), ConsoleUser)

    def test_run_requires_a_query(self, capsys):
        parser = build_arg_parser()
        assert run(parser.parse_args([])) == 2

    def test_run_simple_query(self, capsys):
        parser = build_arg_parser()
        args = parser.parse_args(["--query", "Which films have a boring poster?",
                                  "--size", "8", "--limit", "3", "--no-monitor"])
        assert run(args) == 0
        output = capsys.readouterr().out
        assert "result rows:" in output
        assert "Guilty by Suspicion" in output

    def test_run_flagship_with_explanations(self, capsys):
        parser = build_arg_parser()
        args = parser.parse_args(["--flagship", "--size", "8", "--limit", "2",
                                  "--explain", "--explain-top"])
        assert run(args) == 0
        output = capsys.readouterr().out
        assert "How KathDB answered" in output
        assert "weighted sum" in output

"""Tests for the semantic tier's LSH/ANN graduation.

Covers the tentpole contract: the multi-probe LSH index agrees with the
linear scan on accept/reject decisions across thresholds, multi-probe
recovers near-boundary vectors a single bucket probe would miss, every
invalidation path (eviction, clear, corpus reload) drops index entries in
lockstep with cache entries, the vectorized ``match_fraction_batch`` funnel
composes with the tier instead of bypassing it, and the config/CLI knobs
reach the index.
"""

import numpy as np
import pytest

from repro import KathDBConfig, KathDBService, build_movie_corpus
from repro.core.config import KathDBConfig as CoreConfig
from repro.errors import KathDBError
from repro.gateway import GatewayConfig, LSHIndex, ModelGateway, SemanticNearCache
from repro.gateway.proxy import GatewayEmbeddings
from repro.gateway.semantic import term_signature
from repro.models.cost import CostMeter
from repro.models.embeddings import EmbeddingModel, cosine_similarity
from repro.models.lexicon import default_lexicon

GROUP = ("embedding:lexicon-64", "match_fraction", "", ())

KEYWORDS = ("gun", "explosion", "chase", "fight", "battle", "war", "murder")

#: Candidate term lists shaped like the scoring workload: overlapping,
#: near-duplicated, and disjoint families.
CANDIDATE_LISTS = [
    ("war", "battle", "soldier", "tank"),
    ("war", "battle", "soldier", "tank", "trench"),
    ("War", "Battle", "Soldier", "Tank"),          # case variant of [0]
    ("picnic", "beach", "sunset"),
    ("picnic", "beach", "sunset", "kite"),
    ("ghost", "scream", "haunted"),
    ("tank", "soldier", "battle", "war"),          # order variant of [0]
    ("love", "wedding", "kiss"),
]


def signature_stream(cache: SemanticNearCache):
    """(signature, vector) pairs for the candidate lists above."""
    stream = []
    for candidates in CANDIDATE_LISTS:
        signature = term_signature(KEYWORDS, candidates)
        stream.append((signature, cache.embed_signature(signature)))
    return stream


class TestLSHIndex:
    def test_identical_vectors_share_a_bucket(self):
        index = LSHIndex(planes=16, probes=4)
        vector = np.arange(24, dtype=float)
        assert index.key_of(vector) == index.key_of(vector.copy())

    def test_probe_sequence_is_bounded_and_distinct(self):
        index = LSHIndex(planes=12, probes=6)
        vector = np.linspace(-1.0, 1.0, 24)
        buckets = list(index.probe_sequence(vector))
        assert len(buckets) == 7            # home + probes
        assert len(set(buckets)) == 7       # no bucket probed twice
        assert buckets[0] == index.key_of(vector)

    def test_probe_budget_beyond_planes_uses_pair_flips(self):
        index = LSHIndex(planes=4, probes=8)
        vector = np.linspace(-1.0, 1.0, 16)
        buckets = list(index.probe_sequence(vector))
        # home + 4 single flips + 4 pair flips, all distinct.
        assert len(buckets) == 9
        assert len(set(buckets)) == 9

    def test_add_remove_keeps_size_and_candidates_in_sync(self):
        index = LSHIndex(planes=8, probes=2)
        vectors = [np.arange(16, dtype=float) + i for i in range(3)]
        entries = [object() for _ in vectors]
        for vector, entry in zip(vectors, entries):
            index.add("g", vector, entry)
        assert len(index) == 3
        assert index.remove("g", vectors[1], entries[1])
        assert len(index) == 2
        assert entries[1] not in index.candidates("g", vectors[1])
        # Removing twice is a no-op, not an error.
        assert not index.remove("g", vectors[1], entries[1])

    def test_groups_never_share_candidates(self):
        index = LSHIndex(planes=8, probes=8)
        vector = np.ones(16)
        index.add("a", vector, "entry-a")
        assert index.candidates("b", vector) == []
        assert "entry-a" in index.candidates("a", vector)

    def test_empty_index_rebuilds_planes_for_new_geometry(self):
        index = LSHIndex(planes=8, probes=2, dimensions=64)
        index.add("g", np.ones(4), "e")     # pre-sized, but empty: rebuild
        assert len(index) == 1
        with pytest.raises(ValueError, match="dimensionality"):
            index.key_of(np.ones(9))        # non-empty now: hard error

    def test_occupancy_counters(self):
        index = LSHIndex(planes=8, probes=2)
        for i in range(5):
            index.add("g", np.arange(16, dtype=float) * (i + 1), i)
        occupancy = index.occupancy()
        assert occupancy["entries"] == 5
        assert occupancy["groups"] == 1
        assert 1 <= occupancy["buckets"] <= 5
        assert occupancy["max_bucket"] >= 1


class TestAnnLinearEquivalence:
    @pytest.mark.parametrize("threshold", [0.97, 0.995, 0.999])
    def test_same_accept_reject_decisions_across_thresholds(self, threshold):
        # In the tier's operating regime (tight thresholds: near-matches
        # are near-identical vectors), multi-probe recall is complete and
        # the two lookup structures make byte-identical decisions.
        linear = SemanticNearCache(threshold=threshold, mode="linear")
        ann = SemanticNearCache(threshold=threshold, mode="ann")
        stream = signature_stream(linear)
        for signature, vector in stream:
            linear_hit, _ = linear.search(GROUP, vector, signature)
            ann_hit, _ = ann.search(GROUP, vector, signature)
            # Same decision and, on a hit, the same served answer.
            assert (linear_hit is None) == (ann_hit is None), signature
            if linear_hit is not None:
                assert linear_hit.result == ann_hit.result
                assert linear_hit.signature == ann_hit.signature
            else:
                linear.put(GROUP, vector, signature, signature)
                ann.put(GROUP, vector, signature, signature)
        assert linear.stats.near_hits == ann.stats.near_hits
        assert linear.stats.fallbacks == ann.stats.fallbacks
        assert linear.stats.entries == ann.stats.entries

    def test_loose_thresholds_only_lose_recall_never_add_accepts(self):
        # At a loose threshold, "near" includes vectors whose buckets are
        # genuinely far apart, so ANN may miss matches linear finds.  The
        # divergence must only ever run in the safe direction: an ANN miss
        # is a fallback to exact execution, and every ANN accept is one
        # linear would also have made (with the identical served answer).
        linear = SemanticNearCache(threshold=0.90, mode="linear")
        ann = SemanticNearCache(threshold=0.90, mode="ann")
        stream = signature_stream(linear)
        divergences = 0
        for signature, vector in stream:
            linear_hit, _ = linear.search(GROUP, vector, signature)
            ann_hit, _ = ann.search(GROUP, vector, signature)
            if ann_hit is not None:
                assert linear_hit is not None
                assert ann_hit.result == linear_hit.result
            elif linear_hit is not None:
                divergences += 1
            if linear_hit is None:
                linear.put(GROUP, vector, signature, signature)
            if ann_hit is None:
                ann.put(GROUP, vector, signature, signature)
        # ANN never out-accepts linear.
        assert ann.stats.near_hits <= linear.stats.near_hits
        assert divergences == linear.stats.near_hits - ann.stats.near_hits

    def test_ann_never_accepts_what_linear_rejects(self):
        # The index can only *restrict* the candidate set: every ANN hit
        # must clear the same exact cosine check the linear scan applies.
        linear = SemanticNearCache(threshold=0.97, mode="linear")
        ann = SemanticNearCache(threshold=0.97, mode="ann")
        stream = signature_stream(linear)
        for signature, vector in stream[:4]:
            linear.put(GROUP, vector, signature, signature)
            ann.put(GROUP, vector, signature, signature)
        # Dissimilar on *both* sides of the signature (different query
        # terms too — the shared keyword mass is what makes same-query
        # signatures similar).
        probe_sig = term_signature(("tea", "garden"), ("submarine", "opera"))
        probe_vec = linear.embed_signature(probe_sig)
        assert linear.search(GROUP, probe_vec, probe_sig)[0] is None
        assert ann.search(GROUP, probe_vec, probe_sig)[0] is None


class TestMultiProbeRecall:
    def _boundary_pair(self, cache: SemanticNearCache):
        """A stored/query vector pair that straddles one hyperplane.

        The query is the stored vector reflected through its lowest-margin
        hyperplane: cosine similarity stays ~1 (the margin is tiny) but the
        home bucket differs in exactly that bit — the case multi-probe
        exists for.
        """
        signature = term_signature(KEYWORDS, CANDIDATE_LISTS[0])
        stored = cache.embed_signature(signature)
        matrix = cache.index._ensure_matrix(stored.shape[0])
        margins = matrix @ stored
        plane = int(np.argmin(np.abs(margins)))
        normal = matrix[plane]
        query = stored - 2 * margins[plane] * normal / float(normal @ normal)
        assert cache.index.key_of(query) != cache.index.key_of(stored)
        assert cosine_similarity(query, stored) > 0.999
        return signature, stored, query

    def test_zero_probes_misses_the_neighbour_bucket(self):
        cache = SemanticNearCache(threshold=0.999, mode="ann", probes=0)
        signature, stored, query = self._boundary_pair(cache)
        cache.put(GROUP, stored, signature, 0.5)
        entry, probes = cache.search(GROUP, query, "another-signature")
        assert entry is None                # recall miss: wrong bucket
        assert probes == 1                  # only the home bucket scanned

    def test_multi_probe_recovers_the_neighbour_bucket(self):
        cache = SemanticNearCache(threshold=0.999, mode="ann", probes=8)
        signature, stored, query = self._boundary_pair(cache)
        cache.put(GROUP, stored, signature, 0.5)
        entry, probes = cache.search(GROUP, query, "another-signature")
        assert entry is not None            # the flipped bit was probed
        assert entry.result == 0.5
        assert probes >= 2
        # Linear mode agrees, so multi-probe restored exact-scan recall.
        linear = SemanticNearCache(threshold=0.999, mode="linear")
        linear.put(GROUP, stored, signature, 0.5)
        assert linear.search(GROUP, query, "another-signature")[0] is not None


class TestInvalidation:
    def test_eviction_drops_index_entries_with_cache_entries(self):
        cache = SemanticNearCache(threshold=0.999, mode="ann", capacity=3)
        stream = signature_stream(cache)
        for signature, vector in stream[:5]:
            cache.put(GROUP, vector, signature, signature)
        assert cache.stats.entries == 3
        assert len(cache.index) == 3

    def test_clear_drops_index_entries(self):
        cache = SemanticNearCache(threshold=0.999, mode="ann")
        for signature, vector in signature_stream(cache)[:4]:
            cache.put(GROUP, vector, signature, signature)
        assert len(cache.index) == 4
        cache.clear()
        assert cache.stats.entries == 0
        assert len(cache.index) == 0
        assert cache.index.occupancy()["buckets"] == 0

    def test_volatile_only_gateway_clear_drops_semantic_index(self):
        gateway = ModelGateway(GatewayConfig(enable_semantic=True,
                                             semantic_threshold=0.999))
        meter = CostMeter()
        model = EmbeddingModel(lexicon=default_lexicon(), cost_meter=meter)
        proxy = GatewayEmbeddings(model, gateway.client("s"))
        proxy.match_fraction(list(KEYWORDS), ["war", "battle"])
        assert gateway.semantic.stats.entries == 1
        assert len(gateway.semantic.index) == 1
        gateway.clear(volatile_only=True)
        assert gateway.semantic.stats.entries == 0
        assert len(gateway.semantic.index) == 0

    def test_corpus_reload_drops_semantic_index_entries(self):
        corpus = build_movie_corpus(size=3, seed=7)
        service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                             explore_variants=False))
        service.load_corpus(corpus)
        session = service.session(name="tenant")
        session.models.embeddings.match_fraction(list(KEYWORDS),
                                                 ["war", "battle"])
        assert service.gateway.semantic.stats.entries > 0
        assert len(service.gateway.semantic.index) > 0

        service.load_corpus(corpus)
        assert service.gateway.semantic.stats.entries == 0
        assert len(service.gateway.semantic.index) == 0
        # The tier re-fills after the reload.  (An identical re-issue would
        # be answered by the exact cache — text-keyed entries survive the
        # volatile-only clear — so reorder the terms: new exact key, the
        # semantic tier is consulted, misses, and stores the fresh answer.)
        fresh = service.session(name="tenant2")
        fresh.models.embeddings.match_fraction(list(reversed(KEYWORDS)),
                                               ["battle", "war"])
        assert service.gateway.semantic.stats.entries > 0
        assert len(service.gateway.semantic.index) > 0
        service.shutdown()


class TestVectorizedFunnelUnderAnn:
    def _routed(self, **overrides):
        config = dict(enable_semantic=True, semantic_threshold=0.999,
                      semantic_mode="ann")
        config.update(overrides)
        gateway = ModelGateway(GatewayConfig(**config))
        meter = CostMeter()
        model = EmbeddingModel(lexicon=default_lexicon(), cost_meter=meter)
        return gateway, GatewayEmbeddings(model, gateway.client("s")), meter

    def test_batched_misses_still_batch_and_fill_the_tier(self):
        gateway, proxy, _ = self._routed()
        lists = [["war", "battle"], ["picnic", "beach"], ["ghost", "scream"]]
        proxy.match_fraction_batch(KEYWORDS, lists)
        client = gateway.client("s")
        # The vector executed as one batched chunk (no serial fallback) and
        # every computed member landed in the tier under its signature.
        assert client.counters.batch_calls == 1
        assert client.counters.misses == len(lists)
        assert gateway.semantic.stats.entries == len(lists)

    def test_variant_batch_is_served_by_near_hits_without_executing(self):
        gateway, proxy, meter = self._routed()
        base = [["war", "battle"], ["picnic", "beach"], ["ghost", "scream"]]
        scores = proxy.match_fraction_batch(KEYWORDS, base)
        client = gateway.client("s")
        marker = client.counters.snapshot()
        spent = meter.total_tokens
        variants = [[t.title() for t in terms] for terms in base]
        served = proxy.match_fraction_batch(KEYWORDS, variants)
        delta = client.counters.delta(marker)
        assert served == scores             # embedder normalizes case
        assert delta["semantic_hits"] == len(base)
        assert delta["misses"] == 0 and delta["batch_calls"] == 0
        assert meter.total_tokens == spent  # near-hits charge nobody

    def test_mixed_batch_splits_between_tier_and_execution(self):
        gateway, proxy, _ = self._routed()
        proxy.match_fraction_batch(KEYWORDS, [["war", "battle"],
                                              ["picnic", "beach"]])
        client = gateway.client("s")
        marker = client.counters.snapshot()
        mixed = [["War", "Battle"],          # near-hit (case variant)
                 ["submarine", "desert"],    # novel: must execute
                 ["opera", "violin"]]        # novel: must execute
        proxy.match_fraction_batch(KEYWORDS, mixed)
        delta = client.counters.delta(marker)
        assert delta["semantic_hits"] == 1
        assert delta["misses"] == 2
        assert delta["batch_calls"] == 1     # the two misses still batched

    def test_serial_and_batch_funnels_share_the_tier(self):
        gateway, proxy, _ = self._routed()
        serial = proxy.match_fraction(list(KEYWORDS), ["war", "battle"])
        [batched] = proxy.match_fraction_batch(
            KEYWORDS, [[t.title() for t in ("war", "battle")]])
        assert batched == serial
        assert gateway.client("s").counters.semantic_hits == 1

    def test_linear_mode_serves_the_same_vectors(self):
        gateway, proxy, _ = self._routed(semantic_mode="linear")
        base = [["war", "battle"], ["picnic", "beach"]]
        scores = proxy.match_fraction_batch(KEYWORDS, base)
        variants = [[t.title() for t in terms] for terms in base]
        assert proxy.match_fraction_batch(KEYWORDS, variants) == scores
        assert gateway.client("s").counters.semantic_hits == len(base)


class TestKnobs:
    def test_service_default_is_ann_on(self):
        config = KathDBConfig()
        assert config.enable_semantic_cache
        assert config.semantic_cache_mode == "ann"
        gateway_config = config.gateway_config()
        assert gateway_config.enable_semantic
        assert gateway_config.semantic_mode == "ann"
        assert gateway_config.semantic_planes == config.semantic_ann_planes
        assert gateway_config.semantic_probes == config.semantic_ann_probes

    def test_knobs_reach_the_index(self):
        service = KathDBService(KathDBConfig(semantic_ann_planes=10,
                                             semantic_ann_probes=3))
        assert service.gateway.semantic.index.planes == 10
        assert service.gateway.semantic.index.probes == 3
        service.shutdown()

    def test_config_validation(self):
        with pytest.raises(KathDBError, match="semantic_cache_mode"):
            CoreConfig(semantic_cache_mode="hnsw")
        with pytest.raises(KathDBError, match="semantic_ann_planes"):
            CoreConfig(semantic_ann_planes=0)
        with pytest.raises(KathDBError, match="semantic_ann_probes"):
            CoreConfig(semantic_ann_probes=-1)
        with pytest.raises(ValueError, match="mode"):
            SemanticNearCache(mode="hnsw")

    def test_cli_semantic_cache_flag(self):
        from repro.cli import build_arg_parser
        parser = build_arg_parser()
        assert parser.parse_args([]).semantic_cache is None
        assert parser.parse_args(["--semantic-cache", "off"]).semantic_cache \
            == "off"
        assert parser.parse_args(["--semantic-cache", "linear"]).semantic_cache \
            == "linear"
        with pytest.raises(SystemExit):
            parser.parse_args(["--semantic-cache", "bogus"])

    def test_gateway_stats_surface_ann_counters(self):
        gateway = ModelGateway(GatewayConfig(enable_semantic=True,
                                             semantic_threshold=0.999))
        meter = CostMeter()
        model = EmbeddingModel(lexicon=default_lexicon(), cost_meter=meter)
        proxy = GatewayEmbeddings(model, gateway.client("s"))
        proxy.match_fraction(list(KEYWORDS), ["war", "battle"])
        proxy.match_fraction(list(reversed(KEYWORDS)), ["battle", "war"])
        flat = gateway.flat_stats()
        assert flat["semantic_mode"] == "ann"
        assert flat["semantic_hits"] == 1
        assert flat["semantic_entries"] == 1
        assert flat["ann_buckets"] == 1
        assert flat["ann_probes"] >= 1
        windowed = gateway.windowed_stats(60.0)
        assert windowed["semantic_hits"] == 1
        assert windowed["semantic_probes"] >= 1

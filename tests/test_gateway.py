"""Tests for the model gateway (shared cache, coalescing, batching, admission).

Covers the tentpole contract: identical requests answered once service-wide,
sessions charged only for their own misses, micro-batched execution for the
batchable kinds, the opt-in semantic near-match tier with its exact-execution
fallback guard, admission control, and row-identity between gateway-on and
gateway-off service runs.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    KathDBConfig,
    KathDBService,
    QueryRequest,
    SilentUser,
)
from repro.errors import SessionQuotaExceededError
from repro.gateway import (
    GatewayConfig,
    ModelGateway,
    request_key,
    route_suite,
)
from repro.gateway.proxy import GatewayEmbeddings
from repro.models.cost import CostMeter
from repro.models.embeddings import EmbeddingModel
from repro.models.lexicon import default_lexicon

BORING_QUERY = "Which films have a boring poster?"


class CountingModel:
    """An instrumented stand-in model: counts executions, charges tokens."""

    name = "stub:counting"

    def __init__(self, meter=None, latency_s=0.0, tokens=15):
        self.cost_meter = meter
        self.latency_s = latency_s
        self.tokens = tokens
        self.calls = 0
        self._lock = threading.Lock()

    def ask(self, prompt, purpose="ask"):
        with self._lock:
            self.calls += 1
        if self.latency_s:
            time.sleep(self.latency_s)
        if self.cost_meter is not None:
            self.cost_meter.record(self.name, purpose,
                                   prompt_tokens=self.tokens, completion_tokens=0)
        return {"echo": prompt}


def service_config(**overrides) -> KathDBConfig:
    defaults = dict(seed=7, monitor_enabled=False, explore_variants=False)
    defaults.update(overrides)
    return KathDBConfig(**defaults)


def fresh_service(corpus, **overrides) -> KathDBService:
    svc = KathDBService(service_config(**overrides))
    svc.load_corpus(corpus)
    return svc


def rows_of(response):
    assert response.ok, response.error
    return [dict(row) for row in response.result.final_table]


class TestFingerprint:
    def test_equal_requests_share_a_key(self):
        a = request_key("llm:x", "ask", ("hello", ["a", "b"]), {"k": 1})
        b = request_key("llm:x", "ask", ("hello", ("a", "b")), {"k": 1})
        assert a == b

    def test_distinct_requests_diverge(self):
        base = request_key("llm:x", "ask", ("hello",), {})
        assert request_key("llm:x", "ask", ("world",), {}) != base
        assert request_key("llm:y", "ask", ("hello",), {}) != base
        assert request_key("llm:x", "tell", ("hello",), {}) != base
        assert request_key("llm:x", "ask", ("hello",), {}, "lex2") != base

    def test_images_fingerprint_by_uri(self):
        from repro.data.images import SyntheticImage
        img_a = SyntheticImage(uri="posters/1.png")
        img_b = SyntheticImage(uri="posters/1.png")
        img_c = SyntheticImage(uri="posters/2.png")
        assert request_key("vlm", "see", (img_a,), {}) == \
            request_key("vlm", "see", (img_b,), {})
        assert request_key("vlm", "see", (img_a,), {}) != \
            request_key("vlm", "see", (img_c,), {})


class TestExactCacheTier:
    def test_hit_skips_execution_and_charges_nothing(self):
        gateway = ModelGateway(GatewayConfig())
        meter_a, meter_b = CostMeter(), CostMeter()
        model_a = CountingModel(meter_a)
        model_b = CountingModel(meter_b)
        a = gateway.client("a")
        b = gateway.client("b")

        first = a.invoke(model_a, "ask", ("hi",), {})
        second = b.invoke(model_b, "ask", ("hi",), {})
        assert first == second == {"echo": "hi"}
        # One execution total, on session a's model; b paid nothing.
        assert model_a.calls == 1 and model_b.calls == 0
        assert meter_a.total_tokens == 15 and meter_b.total_tokens == 0
        assert b.counters.hits == 1 and b.counters.tokens_saved == 15
        assert a.counters.misses == 1 and a.counters.tokens_charged == 15

    def test_hits_return_private_copies(self):
        gateway = ModelGateway(GatewayConfig())
        client = gateway.client("s")
        model = CountingModel()
        client.invoke(model, "ask", ("hi",), {})
        stolen = client.invoke(model, "ask", ("hi",), {})
        stolen["echo"] = "poisoned"
        assert client.invoke(model, "ask", ("hi",), {})["echo"] == "hi"

    def test_lru_eviction_by_capacity(self):
        gateway = ModelGateway(GatewayConfig(cache_entries=2))
        client = gateway.client("s")
        model = CountingModel()
        for prompt in ("a", "b", "c"):
            client.invoke(model, "ask", (prompt,), {})
        assert gateway.cache.stats.evictions == 1
        client.invoke(model, "ask", ("a",), {})   # evicted -> re-executes
        assert model.calls == 4

    def test_token_budget_bounds_cached_mass(self):
        gateway = ModelGateway(GatewayConfig(cache_token_budget=40))
        client = gateway.client("s")
        model = CountingModel(CostMeter())  # 15 tokens per call
        for prompt in ("a", "b", "c", "d"):
            client.invoke(model, "ask", (prompt,), {})
        assert gateway.cache.stats.cached_tokens <= 40
        assert gateway.cache.stats.evictions >= 1

    def test_disabled_cache_always_executes(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False))
        client = gateway.client("s")
        model = CountingModel()
        client.invoke(model, "ask", ("hi",), {})
        client.invoke(model, "ask", ("hi",), {})
        assert model.calls == 2

    def test_purpose_tag_does_not_partition_results(self):
        # purpose= only labels the cost record (it never reaches the model),
        # so two operators issuing the identical call under different node
        # names must share one execution.
        gateway = ModelGateway(GatewayConfig())
        client = gateway.client("s")
        model = CountingModel(CostMeter())
        first = client.invoke(model, "ask", ("hi",), {"purpose": "node_a"})
        second = client.invoke(model, "ask", ("hi",), {"purpose": "node_b"})
        assert first == second and model.calls == 1
        assert client.counters.hits == 1

    def test_lexicon_divergence_splits_keys(self):
        gateway = ModelGateway(GatewayConfig())
        client = gateway.client("s")
        meter = CostMeter()
        model = EmbeddingModel(lexicon=default_lexicon(), cost_meter=meter)
        proxy = GatewayEmbeddings(model, client)
        proxy.embed_word("gun")
        assert client.counters.misses == 1
        proxy.embed_word("gun")
        assert client.counters.hits == 1
        # A clarification extends the lexicon: cached vectors computed under
        # the old lexicon must not be served.
        model.lexicon.add_terms("excitement", ["parkour"])
        proxy.embed_word("gun")
        assert client.counters.misses == 2


class TestCoalescing:
    def test_concurrent_identical_calls_execute_once(self):
        # The acceptance-criterion shape, at gateway level: two sessions, one
        # instrumented model execution, result shared, only the leader pays.
        gateway = ModelGateway(GatewayConfig(enable_cache=False))
        meters = {"a": CostMeter(), "b": CostMeter()}
        models = {sid: CountingModel(meters[sid], latency_s=0.15)
                  for sid in meters}
        barrier = threading.Barrier(2)

        def call(sid):
            barrier.wait()
            return gateway.client(sid).invoke(models[sid], "ask", ("same",), {})

        with ThreadPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(call, ("a", "b")))

        assert results[0] == results[1] == {"echo": "same"}
        assert models["a"].calls + models["b"].calls == 1
        assert sorted(m.total_tokens for m in meters.values()) == [0, 15]
        assert gateway.coalescer.stats.coalesced == 1
        assert gateway.coalescer.stats.tokens_saved == 15

    def test_followers_never_see_the_leaders_live_object(self):
        # The leader's caller owns (and may mutate) the returned object, so
        # the slot must publish a private copy whenever followers wait.
        from repro.gateway import RequestCoalescer
        coalescer = RequestCoalescer()
        _, slot = coalescer.begin(("k", 1))
        assert coalescer.begin(("k", 1))[0] is False   # one waiting follower
        original = {"nested": [1, 2]}
        coalescer.complete(slot, original, 5)
        shared, cost = coalescer.wait(slot)
        assert cost == 5 and shared == original
        assert shared is not original
        assert shared["nested"] is not original["nested"]

    def test_leaderless_completion_skips_the_copy(self):
        from repro.gateway import RequestCoalescer
        coalescer = RequestCoalescer()
        _, slot = coalescer.begin(("k", 2))
        original = {"solo": True}
        coalescer.complete(slot, original, 5)
        assert slot.result is original   # no follower -> no copy needed

    def test_leader_failure_propagates_to_followers(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False))

        class FailingModel:
            name = "stub:failing"
            cost_meter = None

            def ask(self, prompt):
                time.sleep(0.1)
                raise RuntimeError("backend down")

        model = FailingModel()
        barrier = threading.Barrier(2)

        def call(sid):
            barrier.wait()
            return gateway.client(sid).invoke(model, "ask", ("x",), {})

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(call, sid) for sid in ("a", "b")]
            for future in futures:
                with pytest.raises(RuntimeError, match="backend down"):
                    future.result()
        assert gateway.coalescer.inflight_count() == 0

    def test_concurrent_identical_queries_from_two_sessions(self, corpus):
        # The acceptance criterion end to end: two *service sessions* run the
        # same query concurrently; the combined underlying model executions
        # (every execution records exactly one cost-meter call; cache hits
        # and coalesced followers record none) must equal a solo run's.
        # Micro-batching is pinned off: a batched invocation collapses its
        # members into one ledger record, which would skew the call *count*
        # this test uses as its execution proxy.
        solo_svc = fresh_service(corpus, simulate_model_latency=0.5,
                                 enable_micro_batching=False)
        solo = solo_svc.session(name="solo")
        assert solo.query(BORING_QUERY).ok
        solo_calls = len(solo.models.cost_meter.calls)
        assert solo_calls > 0

        svc = fresh_service(corpus, simulate_model_latency=0.5,
                            enable_micro_batching=False)
        a, b = svc.session(name="a"), svc.session(name="b")
        barrier = threading.Barrier(2)

        def run(session):
            barrier.wait()
            return session.query(BORING_QUERY)

        with ThreadPoolExecutor(max_workers=2) as pool:
            responses = list(pool.map(run, (a, b)))
        assert all(r.ok for r in responses)
        assert rows_of(responses[0]) == rows_of(responses[1])

        combined = len(a.models.cost_meter.calls) + len(b.models.cost_meter.calls)
        assert combined == solo_calls
        stats = svc.gateway.flat_stats()
        assert stats["cache_hits"] + stats["coalesced"] > 0


class TestMicroBatching:
    def test_window_groups_concurrent_batchable_calls(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False,
                                             batch_window_s=0.05))
        model = CountingModel()
        barrier = threading.Barrier(6)

        def call(index):
            barrier.wait()
            return gateway.client("s").invoke(model, "ask", (f"p{index}",), {},
                                              batchable=True)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(call, range(6)))

        assert [r["echo"] for r in results] == [f"p{i}" for i in range(6)]
        assert model.calls == 6                      # every distinct input ran
        stats = gateway.batcher.stats
        assert stats.batches < 6                     # ...but not 6 invocations
        assert stats.largest_batch >= 2
        assert stats.batched_calls >= 2

    def test_batched_members_pay_sublinear_fair_shares(self):
        # Two sessions' distinct NER calls land in one batch: each session's
        # meter gets a single BatchedModelCall whose shares sum to the batch
        # price, which is below the serial price (shared setup paid once).
        from repro.models.cost import BatchedModelCall
        from repro.models.lexicon import default_lexicon
        from repro.models.ner import EntityExtractor

        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False,
                                             batch_window_s=0.05))
        lexicon = default_lexicon()
        meters = {sid: CostMeter() for sid in ("a", "b")}
        models = {sid: EntityExtractor(cost_meter=meters[sid], lexicon=lexicon)
                  for sid in meters}
        texts = {"a": "David Merrill met a gun fight in the city.",
                 "b": "Ruth Merrill enjoyed a calm garden walk."}
        serial_cost = {}
        for sid, text in texts.items():
            with CostMeter.capture() as records:
                models[sid].extract(text)
            serial_cost[sid] = sum(r.total_tokens for r in records)

        barrier = threading.Barrier(2)

        def call(sid):
            barrier.wait()
            return gateway.client(sid).invoke(models[sid], "extract",
                                              (texts[sid],), {},
                                              batchable=True)

        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(call, ("a", "b")))

        calls = {sid: meters[sid].calls for sid in meters}
        assert all(len(c) == 1 and isinstance(c[0], BatchedModelCall)
                   for c in calls.values())
        charged = {sid: calls[sid][0].total_tokens for sid in calls}
        assert sum(charged.values()) < sum(serial_cost.values())
        for sid in charged:
            assert calls[sid][0].serial_tokens == serial_cost[sid]
            assert charged[sid] < serial_cost[sid]   # everyone got a discount
        saved = sum(serial_cost.values()) - sum(charged.values())
        assert gateway.batcher.stats.token_savings == saved
        assert gateway.flat_stats()["batch_token_savings"] == saved
        per_session = {sid: gateway.client(sid).counters.batch_tokens_saved
                       for sid in charged}
        assert sum(per_session.values()) == saved
        kinds = gateway.batcher.stats.by_kind
        assert any(kind.endswith(".extract") for kind in kinds)
        assert max(k.largest_batch for k in kinds.values()) == 2

    def test_queued_followers_skip_the_window_sleep(self):
        # The satellite bugfix: a follower that is already queued when the
        # leader loops must be served immediately — not after a further full
        # window — so each call waits at most one window beyond execution.
        # Deterministic setup: the leader's execution blocks on an event
        # until the follower is provably queued, then we count windows.
        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False,
                                             batch_window_s=0.5))

        class GatedModel:
            name = "stub:gated"
            cost_meter = None

            def __init__(self):
                self.release = threading.Event()
                self.leading = threading.Event()

            def ask(self, prompt):
                if prompt == "lead":
                    self.leading.set()
                    assert self.release.wait(5)
                return {"echo": prompt}

        model = GatedModel()
        kind = "stub:gated.ask"

        def call(prompt):
            return gateway.client("s").invoke(model, "ask", (prompt,), {},
                                              batchable=True)

        with ThreadPoolExecutor(max_workers=2) as pool:
            lead_future = pool.submit(call, "lead")
            assert model.leading.wait(5)   # the leader is mid-execution
            follow_future = pool.submit(call, "follow")
            # Wait until the follower sits in the queue while the leader is
            # still executing (its own entry was already dequeued).
            deadline = time.monotonic() + 5
            while len(gateway.batcher._queues.get(kind, [])) < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            released_at = time.monotonic()
            model.release.set()
            assert lead_future.result()["echo"] == "lead"
            assert follow_future.result()["echo"] == "follow"
            follower_wait = time.monotonic() - released_at
        # One window slept (the leader's own); the queued follower was
        # dispatched without a second window — the old code slept again at
        # the top of every drain loop, costing a further 0.5 s here.
        assert gateway.batcher.window_sleeps == 1
        assert follower_wait < 0.4

    def test_member_failure_only_fails_that_member(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False,
                                             batch_window_s=0.05))

        class PickyModel:
            name = "stub:picky"
            cost_meter = None

            def ask(self, prompt):
                if prompt == "bad":
                    raise ValueError("no thanks")
                return {"echo": prompt}

        model = PickyModel()
        barrier = threading.Barrier(3)

        def call(prompt):
            barrier.wait()
            return gateway.client("s").invoke(model, "ask", (prompt,), {},
                                              batchable=True)

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = {p: pool.submit(call, p) for p in ("ok1", "bad", "ok2")}
            assert futures["ok1"].result()["echo"] == "ok1"
            assert futures["ok2"].result()["echo"] == "ok2"
            with pytest.raises(ValueError, match="no thanks"):
                futures["bad"].result()


class TestSemanticTier:
    def _proxy(self, gateway, session="s"):
        meter = CostMeter()
        model = EmbeddingModel(lexicon=default_lexicon(), cost_meter=meter)
        return GatewayEmbeddings(model, gateway.client(session)), meter

    def test_raw_gateway_layer_defaults_off_and_executes_exactly(self):
        # GatewayConfig (the explicit, low-level layer) keeps the tier
        # opt-in; the *service* default is on via KathDBConfig, whose
        # measured-accuracy graduation is tests/test_semantic_ann.py's and
        # benchmarks/bench_semantic.py's contract.
        gateway = ModelGateway(GatewayConfig())
        proxy, _ = self._proxy(gateway)
        proxy.match_fraction(["gun", "murder"], ["fight"])
        proxy.match_fraction(["murder", "gun"], ["fight"])   # different exact key
        assert gateway.semantic.stats.near_hits == 0
        assert gateway.cache.stats.misses == 2

    def test_near_match_serves_equivalent_requests(self):
        gateway = ModelGateway(GatewayConfig(enable_semantic=True,
                                             semantic_threshold=0.999))
        proxy, meter = self._proxy(gateway)
        exact = proxy.match_fraction(["gun", "murder"], ["fight"])
        spent = meter.total_tokens
        # Same term sets, different order: exact key differs, signature is
        # identical -> the semantic tier answers without executing.
        near = proxy.match_fraction(["murder", "gun"], ["fight"])
        assert near == exact
        assert meter.total_tokens == spent
        assert gateway.semantic.stats.near_hits == 1

    def test_signatures_are_structural_not_space_joined(self):
        from repro.gateway.semantic import term_signature
        assert term_signature(["a b"], ["x"]) != term_signature(["a", "b"], ["x"])
        assert term_signature(["a | b"], ["x"]) != term_signature(["a"], ["b", "x"])
        # Order-insensitive, duplicates preserved.
        assert term_signature(["b", "a"], ["x"]) == term_signature(["a", "b"], ["x"])
        assert term_signature(["a", "a"], ["x"]) != term_signature(["a"], ["x"])

    def test_different_threshold_kwarg_never_shares_answers(self):
        # match_fraction's threshold= changes the answer; requests with the
        # same terms but different thresholds must partition the tier.
        gateway = ModelGateway(GatewayConfig(enable_semantic=True,
                                             semantic_threshold=0.999))
        proxy, meter = self._proxy(gateway)
        # gun~weapon similarity is ~0.86: a match at 0.1, not at 0.99.
        loose = proxy.match_fraction(["gun"], ["gun", "weapon"], threshold=0.1)
        spent = meter.total_tokens
        strict = proxy.match_fraction(["gun"], ["gun", "weapon"], threshold=0.99)
        assert meter.total_tokens > spent        # executed, not served
        assert loose == 1.0 and strict == 0.5

    def test_below_threshold_falls_back_to_exact_execution(self):
        gateway = ModelGateway(GatewayConfig(enable_semantic=True,
                                             semantic_threshold=0.999))
        proxy, meter = self._proxy(gateway)
        proxy.match_fraction(["gun", "murder"], ["fight"])
        spent = meter.total_tokens
        result = proxy.match_fraction(["tea", "garden"], ["fight"])
        # Dissimilar signature: the guard forced a real execution.
        assert gateway.semantic.stats.fallbacks >= 1
        assert meter.total_tokens > spent
        raw = EmbeddingModel(lexicon=default_lexicon())
        assert result == raw.match_fraction(["tea", "garden"], ["fight"])

    def test_capacity_bounds_the_whole_tier_not_each_group(self):
        # Groups are open-ended (every lexicon divergence mints new ones);
        # the configured capacity must bound total stored entries globally.
        from repro.gateway import SemanticNearCache
        import numpy as np
        cache = SemanticNearCache(threshold=0.999, capacity=5)
        for group_index in range(4):
            for entry_index in range(3):
                cache.put((f"group{group_index}",),
                          np.ones(4), f"sig{group_index}-{entry_index}",
                          result=entry_index)
        assert cache.stats.entries <= 5
        assert sum(len(v) for v in cache._groups.values()) <= 5


class TestAdmissionControl:
    def test_session_quota_is_enforced(self):
        gateway = ModelGateway(GatewayConfig(session_token_quota=20))
        client = gateway.client("greedy")
        model = CountingModel(CostMeter())  # 15 tokens per execution
        client.invoke(model, "ask", ("one",), {})
        client.invoke(model, "ask", ("two",), {})  # 30 > 20 after this charge
        with pytest.raises(SessionQuotaExceededError):
            client.invoke(model, "ask", ("three",), {})
        # The rejection happened *before* joining the in-flight table: an
        # under-quota session issuing the same request next must lead its
        # own execution, not inherit the rejected session's error.
        assert gateway.coalescer.inflight_count() == 0
        other = gateway.client("frugal")
        assert other.invoke(model, "ask", ("three",), {}) == {"echo": "three"}
        # Cache hits stay free: they cost the service nothing.
        assert client.invoke(model, "ask", ("one",), {}) == {"echo": "one"}
        assert gateway.admission.rejections == 1

    def test_quota_surfaces_as_captured_service_error(self, corpus):
        svc = fresh_service(corpus, session_token_quota=1)
        response = svc.query(BORING_QUERY)
        assert not response.ok
        assert "SessionQuotaExceededError" in response.error
        # The failure response still carries the quota position (satellite:
        # callers can see the exhaustion, not just the rejection).
        assert response.quota_exhausted
        assert response.tokens_remaining == 0

    def test_quota_state_lets_callers_back_off_before_rejection(self, corpus):
        # The ROADMAP satellite: quota state on Session/QueryResponse so a
        # caller can stop *before* SessionQuotaExceededError fires.
        svc = fresh_service(corpus, session_token_quota=1_000_000)
        session = svc.session(name="careful")
        assert session.tokens_used == 0
        assert session.tokens_remaining == 1_000_000
        assert not session.quota_exhausted

        response = session.query(BORING_QUERY)
        assert response.ok
        assert response.tokens_used > 0
        assert response.tokens_used == session.tokens_used
        assert response.tokens_remaining == 1_000_000 - response.tokens_used
        assert not response.quota_exhausted
        state = session.quota_state()
        assert state["tokens_used"] == response.tokens_used

        # Shrink the enforced quota under the session's spend: the *state*
        # flips before any further call is attempted — that is the backoff
        # signal (quota_state reads the admission controller's copy, the
        # same one precheck() refuses against).
        svc.gateway.admission.session_token_quota = response.tokens_used
        assert session.quota_exhausted
        assert session.tokens_remaining == 0

    def test_quota_state_without_a_quota_or_gateway(self, corpus):
        svc = fresh_service(corpus)   # no quota configured
        session = svc.session(name="free")
        assert session.query(BORING_QUERY).ok
        assert session.tokens_remaining is None
        assert not session.quota_exhausted
        from repro import KathDB
        db = KathDB(service_config())
        db.load_corpus(corpus)
        legacy = db.default_session
        assert legacy.tokens_remaining is None   # un-routed: never exhausts
        assert not legacy.quota_exhausted

    def test_internal_namespace_is_not_caller_reachable(self):
        # The populator's quota-exempt client lives under the reserved "#"
        # prefix; a caller session named "loader" gets its own plain client,
        # and reserved ids are rejected outright.
        gateway = ModelGateway(GatewayConfig(session_token_quota=10))
        internal = gateway.internal_client("loader")
        assert internal.quota_exempt
        impostor = gateway.client("loader")
        assert impostor is not internal
        assert not impostor.quota_exempt
        with pytest.raises(ValueError, match="reserved"):
            gateway.client("#loader")

    def test_client_and_spend_registries_are_bounded(self):
        gateway = ModelGateway(GatewayConfig(max_tracked_sessions=8))
        gateway.admission.MAX_TRACKED_SESSIONS = 8
        model = CountingModel(CostMeter())
        for index in range(20):
            gateway.client(f"s{index}").invoke(model, "ask", (f"p{index}",), {})
        assert len(gateway._clients) <= 8
        assert len(gateway.admission._spent) <= 8

    def test_exhausted_sessions_survive_ledger_eviction(self):
        # Evicting an exhausted session's ledger entry would hand it a fresh
        # quota; churn from throwaway sessions must never un-block it.
        gateway = ModelGateway(GatewayConfig(session_token_quota=20))
        gateway.admission.MAX_TRACKED_SESSIONS = 4
        blocked = gateway.client("blocked")
        model = CountingModel(CostMeter())
        blocked.invoke(model, "ask", ("a",), {})
        blocked.invoke(model, "ask", ("b",), {})   # 30 tokens: over quota
        for index in range(10):                    # churn under-quota sessions
            gateway.client(f"churn{index}").invoke(
                model, "ask", (f"p{index}",), {})
        assert gateway.admission.spent("blocked") >= 20
        with pytest.raises(SessionQuotaExceededError):
            blocked.invoke(model, "ask", ("c",), {})

    def test_ledger_eviction_drops_lowest_spenders_first(self):
        # A nearly-exhausted long-lived session must keep its ledger under
        # churn from low-spend throwaway sessions, or idling would silently
        # refresh its quota.
        from repro.gateway import AdmissionController
        admission = AdmissionController(session_token_quota=100)
        admission.MAX_TRACKED_SESSIONS = 4
        admission.charge("nearly", 90)
        for index in range(10):
            admission.charge(f"throwaway{index}", 15)
        assert admission.spent("nearly") == 90
        assert len(admission._spent) <= 4

    def test_concurrency_limiter_serializes_executions(self):
        gateway = ModelGateway(GatewayConfig(enable_cache=False,
                                             enable_coalescing=False,
                                             enable_batching=False,
                                             max_concurrency=1))
        model = CountingModel(latency_s=0.05)
        barrier = threading.Barrier(3)

        def call(index):
            barrier.wait()
            return gateway.client(f"s{index}").invoke(
                model, "ask", (f"p{index}",), {})

        with ThreadPoolExecutor(max_workers=3) as pool:
            list(pool.map(call, range(3)))
        assert gateway.admission.peak_concurrency == 1
        assert gateway.admission.waits >= 1


class TestServiceIntegration:
    def test_gateway_on_off_rows_identical(self, corpus):
        on = fresh_service(corpus)
        off = fresh_service(corpus, enable_model_gateway=False)
        requests = [QueryRequest(nl_query=BORING_QUERY, user=SilentUser())
                    for _ in range(4)]
        with_gateway = on.query_batch(requests, jobs=4)
        without = off.query_batch(
            [QueryRequest(nl_query=BORING_QUERY, user=SilentUser())
             for _ in range(4)], jobs=4)
        for a, b in zip(with_gateway, without):
            assert rows_of(a) == rows_of(b)
        saved = sum(r.gateway_stats["tokens_saved"] for r in with_gateway)
        assert saved > 0
        assert all(r.gateway_stats is None for r in without)

    def test_repeated_query_tokens_collapse(self, corpus):
        svc = fresh_service(corpus)
        first = svc.query(BORING_QUERY)
        second = svc.query(BORING_QUERY)
        assert first.total_tokens > 0
        # Prepared plan + gateway cache: the rerun costs (almost) nothing.
        assert second.total_tokens < first.total_tokens / 2
        assert second.gateway_stats["hits"] > 0

    def test_per_operator_gateway_observability(self, corpus):
        svc = fresh_service(corpus)
        svc.query(BORING_QUERY)
        rerun = svc.query(BORING_QUERY)
        records = rerun.result.records
        assert sum(r.gateway_hits for r in records) > 0
        assert sum(r.gateway_tokens_saved for r in records) > 0

    def test_no_model_cache_flag_pays_every_time(self, corpus):
        svc = fresh_service(corpus, enable_model_cache=False)
        first = svc.query(BORING_QUERY)
        second = svc.query(BORING_QUERY)
        assert second.prepared_hit                   # plans still cached
        assert second.execute_tokens == first.execute_tokens  # results are not
        assert svc.gateway_stats()["cache_hits"] == 0

    def test_describe_includes_gateway(self, corpus):
        svc = fresh_service(corpus)
        assert "model gateway:" in svc.describe()
        assert "tokens_saved" in svc.describe()

    def test_corpus_reload_clears_gateway_results(self, corpus):
        # Poster URIs collide across corpora (both corpora contain e.g.
        # file://posters/clean_and_sober.png with different pixels), so a
        # reload must drop cached model results or queries against the new
        # corpus would silently read the old corpus's scene graphs.
        from repro import build_movie_corpus
        svc = fresh_service(corpus)
        svc.query(BORING_QUERY)
        assert svc.gateway_stats()["cache_entries"] > 0
        other = build_movie_corpus(size=8, seed=3)
        svc.load_corpus(other)

        # Compare modulo lid: lineage ids legitimately advance on a second
        # load into the same service; the *model-derived* values must match.
        def content(response):
            return [{k: v for k, v in row.items() if k != "lid"}
                    for row in rows_of(response)]

        reference = fresh_service(other, enable_model_gateway=False)
        assert content(svc.query(BORING_QUERY)) == \
            content(reference.query(BORING_QUERY))

    def test_per_session_windowed_stats(self, corpus):
        # The ROADMAP satellite: windowed gateway stats scoped to one
        # session's own events, for multi-tenant quota tuning.
        svc = fresh_service(corpus)
        busy = svc.session(name="busy")
        idle = svc.session(name="idle")
        assert busy.query(BORING_QUERY).ok

        scoped = busy.gateway_stats(window_s=60.0)
        assert scoped["session_id"] == "busy"
        assert scoped["windowed"]["session_id"] == "busy"
        assert scoped["windowed"]["requests"] > 0
        assert scoped["windowed"]["tokens_charged"] > 0
        # The idle tenant's window is empty even though the service-wide
        # window (and the loader's population traffic) is not.
        assert idle.gateway_stats(window_s=60.0)["windowed"]["requests"] == 0
        assert svc.gateway.windowed_stats(60.0)["requests"] > \
            scoped["windowed"]["requests"] - 1

        # The service surface answers for any tracked session id, and the
        # cumulative block matches the session's own counters.
        via_service = svc.gateway_stats(window_s=60.0, session_id="busy")
        assert via_service["windowed"]["requests"] == \
            scoped["windowed"]["requests"]
        assert via_service["misses"] == scoped["misses"]
        # Unknown ids answer empty rather than minting a client.
        assert "misses" not in svc.gateway_stats(session_id="nobody")
        assert svc.gateway.session_counters("nobody") is None

    def test_legacy_facade_gateway_stats_are_empty(self, corpus):
        from repro import KathDB
        db = KathDB(service_config())
        db.load_corpus(corpus)
        assert db.default_session.gateway_stats(window_s=60.0) == {}

    def test_legacy_facade_stays_unrouted(self, corpus):
        from repro import KathDB
        db = KathDB(service_config())
        db.load_corpus(corpus)
        assert getattr(db.default_session.models, "gateway_client", None) is None
        result_a = db.query(BORING_QUERY, user=SilentUser())
        tokens_a = result_a.total_tokens
        result_b = db.query(BORING_QUERY, user=SilentUser())
        # Historical accounting: the facade re-pays the full cost every time.
        assert result_b.total_tokens == tokens_a > 0

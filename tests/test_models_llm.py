"""Unit tests for the simulated LLM (ambiguity, interpretation, judgement)."""

import pytest

from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.models.cost import CostMeter
from repro.models.lexicon import default_lexicon
from repro.models.llm import SimulatedLLM


@pytest.fixture()
def llm():
    return SimulatedLLM(cost_meter=CostMeter(), lexicon=default_lexicon())


class TestAmbiguityDetection:
    def test_flagship_query_flags_exciting_first(self, llm):
        reports = llm.detect_ambiguity(FLAGSHIP_QUERY)
        assert reports, "expected at least one ambiguity"
        assert reports[0].term == "exciting"
        assert reports[0].priority >= 0.5
        assert reports[0].question == "What does 'exciting' mean in this context?"

    def test_boring_is_low_priority(self, llm):
        reports = {r.term: r for r in llm.detect_ambiguity(FLAGSHIP_QUERY)}
        assert "boring" in reports
        assert reports["boring"].priority < 0.5

    def test_resolved_terms_not_reported(self, llm):
        reports = llm.detect_ambiguity(FLAGSHIP_QUERY, resolved_terms=["exciting"])
        assert all(r.term != "exciting" for r in reports)

    def test_unambiguous_query(self, llm):
        assert llm.detect_ambiguity("List films released after 2000.") == []


class TestKeywordGeneration:
    def test_keywords_come_from_excitement_cluster(self, llm):
        keywords = llm.generate_keywords("exciting", FLAGSHIP_CLARIFICATION)
        assert "gun" in keywords
        assert len(keywords) == llm.keyword_count

    def test_clarification_terms_surface_first(self, llm):
        keywords = llm.generate_keywords("exciting", "scenes with a gun fight")
        assert keywords[0] in ("gun", "fight")

    def test_unknown_concept_falls_back(self, llm):
        keywords = llm.generate_keywords("quiet peaceful films")
        assert keywords, "fallback should still produce keywords"

    def test_alternative_interpretations(self, llm):
        options = llm.alternative_interpretations("exciting")
        assert len(options) == 3
        assert any("recent" in o for o in options)


class TestQueryInterpretation:
    def test_flagship_intent(self, llm):
        intent = llm.interpret_query(FLAGSHIP_QUERY, {"exciting": FLAGSHIP_CLARIFICATION},
                                     [FLAGSHIP_CORRECTION])
        assert intent.ranking is True
        assert intent.include_recency is True
        assert [s.concept for s in intent.semantic_scores] == ["excitement"]
        assert [p.concept for p in intent.image_predicates] == ["boring_visual"]
        assert intent.score_weights == {"excitement_score": 0.7, "recency_score": 0.3}

    def test_flagship_without_correction_has_no_recency(self, llm):
        intent = llm.interpret_query(FLAGSHIP_QUERY, {"exciting": FLAGSHIP_CLARIFICATION}, [])
        assert intent.include_recency is False
        assert intent.score_weights == {"excitement_score": 1.0}

    def test_boring_scoped_to_poster_not_text(self, llm):
        intent = llm.interpret_query(FLAGSHIP_QUERY)
        assert all(s.concept != "boring_visual" for s in intent.semantic_scores)

    def test_year_filters(self, llm):
        after = llm.interpret_query("List films released after 2000 whose plots are exciting.")
        assert ("year", ">", 2000) in [(f.column, f.op, f.value) for f in after.relational_filters]
        before = llm.interpret_query("Show films released before 1995 with calm plots.")
        assert ("year", "<", 1995) in [(f.column, f.op, f.value) for f in before.relational_filters]

    def test_calm_concept(self, llm):
        intent = llm.interpret_query("Show films with calm, quiet plots.")
        assert [s.concept for s in intent.semantic_scores] == ["calm"]

    def test_image_only_query(self, llm):
        intent = llm.interpret_query("Which films have a boring poster?")
        assert intent.needs_images and not intent.needs_text
        assert intent.ranking is False


class TestDependencyClassification:
    @pytest.mark.parametrize("description,expected", [
        ("Join the text view with the movie table", "many_to_many"),
        ("Sort the films by final score", "many_to_many"),
        ("Count movies per genre by aggregate", "many_to_one"),
        ("Assign an excitement score to each film", "one_to_one"),
        ("Extract entities from each plot, one row per entity", "one_to_many"),
    ])
    def test_patterns(self, llm, description, expected):
        assert llm.classify_dependency_pattern(description) == expected


class TestSemanticJudgement:
    def test_reversed_recency_is_flagged(self, llm):
        inputs = [{"year": 1990}, {"year": 2020}]
        outputs = [{"year": 1990, "recency_score": 0.9}, {"year": 2020, "recency_score": 0.1}]
        ok, hint = llm.judge_output("Assign a recency score based on release year",
                                    inputs, outputs)
        assert not ok and "revers" in hint

    def test_correct_recency_accepted(self, llm):
        outputs = [{"year": 1990, "recency_score": 0.1}, {"year": 2020, "recency_score": 0.9}]
        ok, _ = llm.judge_output("Assign a recency score", outputs, outputs)
        assert ok

    def test_constant_scores_flagged(self, llm):
        outputs = [{"x_score": 0.5}, {"x_score": 0.5}, {"x_score": 0.5}]
        ok, hint = llm.judge_output("Assign a score", outputs, outputs)
        assert not ok and "constant" in hint

    def test_out_of_range_scores_flagged(self, llm):
        outputs = [{"x_score": 3.2}, {"x_score": 0.1}]
        ok, hint = llm.judge_output("Assign a score", outputs, outputs)
        assert not ok and "[0, 1]" in hint

    def test_empty_output_flagged(self, llm):
        ok, hint = llm.judge_output("Do something", [{"a": 1}], [])
        assert not ok and "no output" in hint


class TestGenerationAndCost:
    def test_render_text_charges_tokens(self, llm):
        before = llm.cost_meter.total_tokens
        text = llm.render_text("hello {name}", name="world")
        assert text == "hello world"
        assert llm.cost_meter.total_tokens > before

    def test_complete_routes_keywords(self, llm):
        completion = llm.complete("Please produce a keyword list for exciting movies")
        assert any(term in completion for term in ("gun", "attack", "chase", "bomb"))

    def test_complete_routes_clarification(self, llm):
        completion = llm.complete("Is anything ambiguous about: find exciting movies?")
        assert "exciting" in completion

    def test_complete_fallback(self, llm):
        assert llm.complete("unrelated request").startswith("Acknowledged")

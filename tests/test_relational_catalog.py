"""Unit tests for the catalog, storage, views, and indexes."""

import pytest

from repro.errors import DuplicateTableError, StorageError, UnknownTableError
from repro.relational.catalog import Catalog, TableStats
from repro.relational.indexes import HashIndex
from repro.relational.storage import LossyBlobWarning, TableStorage
from repro.relational.table import Table
from repro.relational.view import MaterializedView, View


@pytest.fixture()
def movies_table():
    return Table.from_rows("movies", [
        {"movie_id": 1, "title": "Guilty by Suspicion", "year": 1991},
        {"movie_id": 2, "title": "Clean and Sober", "year": 1988},
        {"movie_id": 3, "title": "Clean and Sober", "year": 1988},
    ])


class TestCatalog:
    def test_register_and_lookup(self, movies_table):
        catalog = Catalog()
        entry = catalog.register(movies_table)
        assert catalog.has_table("MOVIES")
        assert catalog.table("movies") is movies_table
        assert entry.stats.row_count == 3
        assert entry.stats.column_cardinality["title"] == 2

    def test_duplicate_registration(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        with pytest.raises(DuplicateTableError):
            catalog.register(movies_table)
        catalog.register(movies_table, replace=True)  # replace allowed

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Catalog().table("nope")

    def test_unregister(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        catalog.unregister("movies")
        assert not catalog.has_table("movies")
        with pytest.raises(UnknownTableError):
            catalog.unregister("movies")

    def test_kinds_and_names(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table, kind="base")
        catalog.register(movies_table.copy("view_t"), kind="view")
        assert set(catalog.table_names()) == {"movies", "view_t"}
        assert catalog.table_names(kind="view") == ["view_t"]
        assert len(catalog) == 2

    def test_refresh_stats(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        movies_table.insert({"movie_id": 4, "title": "New", "year": 2024})
        stats = catalog.refresh_stats("movies")
        assert stats.row_count == 4

    def test_describe_contains_schema_and_samples(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        description = catalog.describe_table("movies")
        assert "movie_id: integer" in description
        assert "sample rows" in description
        assert "movies" in catalog.describe()

    def test_joinable_columns(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        plots = Table.from_rows("plots", [{"movie_id": 1, "plot": "x"}])
        catalog.register(plots)
        assert catalog.joinable_columns("movies", "plots") == ["movie_id"]

    def test_sample_rows(self, movies_table):
        catalog = Catalog()
        catalog.register(movies_table)
        assert len(catalog.sample_rows("movies", 2)) == 2


class TestTableStats:
    def test_compute(self, movies_table):
        stats = TableStats.compute(movies_table)
        assert stats.row_count == 3
        assert stats.null_fraction["year"] == 0.0


class TestStorage:
    def test_save_load_roundtrip(self, tmp_path, movies_table):
        storage = TableStorage(tmp_path)
        path = storage.save(movies_table)
        assert path.exists()
        restored = storage.load("movies")
        assert len(restored) == 3
        assert restored[0]["title"] == "Guilty by Suspicion"

    def test_exists_delete_list(self, tmp_path, movies_table):
        storage = TableStorage(tmp_path)
        storage.save(movies_table)
        assert storage.exists("movies")
        assert storage.list_tables() == ["movies"]
        assert storage.delete("movies") is True
        assert storage.delete("movies") is False

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StorageError):
            TableStorage(tmp_path).load("ghost")

    def test_lossy_blob_roundtrip_is_flagged(self, tmp_path):
        # BLOB payloads are not persisted; the restore must *signal* the loss
        # (warning + lossy_columns) instead of silently returning NULLs.
        from repro.relational.schema import Column, Schema
        from repro.relational.types import DataType
        schema = Schema([Column("pid", DataType.INTEGER),
                         Column("pixels", DataType.BLOB)])
        table = Table("posters", schema,
                      [{"pid": 1, "pixels": object()}, {"pid": 2, "pixels": None}])
        storage = TableStorage(tmp_path)
        storage.save(table)
        with pytest.warns(LossyBlobWarning, match="pixels"):
            restored = storage.load("posters")
        assert restored.lossy_columns == ["pixels"]
        assert restored[0]["pixels"] is None

    def test_blob_free_load_is_clean(self, tmp_path, movies_table):
        import warnings
        storage = TableStorage(tmp_path)
        storage.save(movies_table)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            restored = storage.load("movies")
        assert restored.lossy_columns == []


class TestViews:
    def test_view_computes_on_demand(self, movies_table):
        view = View("recent", lambda: movies_table.where(lambda r: r["year"] > 1989))
        computed = view.compute()
        assert computed.name == "recent"
        assert len(computed) == 1

    def test_materialized_view_caches(self, movies_table):
        calls = {"n": 0}

        def populate():
            calls["n"] += 1
            return movies_table.copy("cached")

        view = MaterializedView("cached", populate)
        assert not view.is_populated
        view.compute()
        view.compute()
        assert calls["n"] == 1 and view.is_populated

    def test_materialized_view_refresh_bumps_version(self, movies_table):
        view = MaterializedView("v", lambda: movies_table.copy("v"), version=1)
        view.compute()
        view.refresh(populated_by="populate_scene_graph")
        assert view.version == 2
        assert view.populated_by == "populate_scene_graph"

    def test_invalidate(self, movies_table):
        view = MaterializedView("v", lambda: movies_table.copy("v"))
        view.compute()
        view.invalidate()
        assert not view.is_populated


class TestHashIndex:
    def test_lookup(self, movies_table):
        index = HashIndex(movies_table, "movie_id")
        assert index.lookup_one(2)["title"] == "Clean and Sober"
        assert index.lookup(99) == []
        assert 1 in index and 99 not in index

    def test_index_tracks_appends(self, movies_table):
        index = HashIndex(movies_table, "movie_id")
        movies_table.insert({"movie_id": 9, "title": "New", "year": 2024})
        assert index.lookup_one(9)["title"] == "New"

    def test_index_rebuild_after_shrink(self, movies_table):
        index = HashIndex(movies_table, "movie_id")
        movies_table.delete_where(lambda r: r["movie_id"] == 1)
        assert index.lookup(1) == []

    def test_unknown_column(self, movies_table):
        from repro.errors import UnknownColumnError
        with pytest.raises(UnknownColumnError):
            HashIndex(movies_table, "bogus")

    def test_duplicate_keys_grouped(self, movies_table):
        index = HashIndex(movies_table, "title")
        assert len(index.lookup("Clean and Sober")) == 2

    def test_index_tracks_growth_since_build(self, movies_table):
        # Regression: the backing table growing after build must be visible
        # to every lookup form, not just lookup().
        index = HashIndex(movies_table, "movie_id")
        movies_table.insert_many([
            {"movie_id": 9, "title": "New", "year": 2024},
            {"movie_id": 10, "title": "Newer", "year": 2025},
        ])
        assert 10 in index
        assert len(index) == 5
        assert index.lookup_one(9)["title"] == "New"

    def test_index_survives_delete_then_insert_same_length(self, movies_table):
        # Regression: a delete followed by an insert keeps len(table)
        # constant; the old suffix-only refresh served stale positions here
        # (row 1's slot now holds a different movie).
        index = HashIndex(movies_table, "movie_id")
        assert index.lookup_one(1)["title"] == "Guilty by Suspicion"
        movies_table.delete_where(lambda r: r["movie_id"] == 1)
        movies_table.insert({"movie_id": 7, "title": "Replacement", "year": 2001})
        assert len(movies_table) == 3  # same length as at build time
        assert index.lookup(1) == []
        assert index.lookup_one(7)["title"] == "Replacement"

    def test_index_sees_in_place_updates(self, movies_table):
        # Regression: update_where changes indexed values without changing
        # the row count; lookups must reflect the new values.
        index = HashIndex(movies_table, "title")
        movies_table.update_where(lambda r: r["movie_id"] == 2,
                                  {"title": "Renamed"})
        assert index.lookup_one("Renamed")["movie_id"] == 2
        assert len(index.lookup("Clean and Sober")) == 1

    def test_index_sees_truncate(self, movies_table):
        index = HashIndex(movies_table, "movie_id")
        movies_table.truncate()
        assert index.lookup(1) == []
        assert len(index) == 0

    def test_update_where_validates_before_mutating(self, movies_table):
        # A bad value must leave every row untouched (and the index fresh),
        # not abort mid-loop with some rows already rewritten.
        from repro.errors import SchemaError
        index = HashIndex(movies_table, "title")
        with pytest.raises(SchemaError):
            movies_table.update_where(lambda r: True,
                                      {"title": "New", "year": "not-a-year"})
        assert movies_table.column_values("title")[0] == "Guilty by Suspicion"
        assert index.lookup("New") == []
        assert index.lookup_one("Guilty by Suspicion")["movie_id"] == 1

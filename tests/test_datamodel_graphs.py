"""Unit tests for scene-graph and text-graph view population (Tables 1 and 2)."""

import pytest

from repro.datamodel.lineage import LINEAGE_LEVEL_TABLE, LineageStore
from repro.datamodel.scene_graph import populate_scene_graph
from repro.datamodel.text_graph import populate_text_graph
from repro.datamodel.views import ViewPopulator
from repro.models.base import ModelSuite
from repro.relational.catalog import Catalog


@pytest.fixture()
def perfect_models():
    """Noise-free models so counts are exact."""
    return ModelSuite.create(seed=1, vlm_error_rate=0.0)


class TestSceneGraphPopulation:
    def test_objects_match_ground_truth(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        scene = populate_scene_graph(posters.rows, perfect_models.vlm)
        expected_objects = sum(len(m.poster.objects) for m in corpus)
        assert len(scene.objects) == expected_objects
        assert len(scene.frames) == len(corpus)
        assert scene.objects.schema.column_names() == [
            "vid", "fid", "oid", "lid", "cid", "x_1", "y_1", "x_2", "y_2"]

    def test_attributes_and_relationships(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        scene = populate_scene_graph(posters.rows, perfect_models.vlm)
        # Every object carries a color attribute in the synthetic corpus.
        assert len(scene.attributes) == len(scene.objects)
        for row in scene.relationships:
            assert row["pid"]
            assert row["oid_i"] != row["oid_j"]

    def test_frame_statistics_distinguish_styles(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        scene = populate_scene_graph(posters.rows, perfect_models.vlm)
        guilty = corpus.by_title("Guilty by Suspicion")
        vivid = next(m for m in corpus if not m.gt_boring_poster)
        frames = {row["vid"]: row for row in scene.frames}
        assert frames[vivid.movie_id]["saturation"] > frames[guilty.movie_id]["saturation"]

    def test_helper_lookups(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        scene = populate_scene_graph(posters.rows, perfect_models.vlm)
        guilty = corpus.by_title("Guilty by Suspicion")
        assert len(scene.objects_for(guilty.movie_id)) == len(guilty.poster.objects)
        assert scene.class_names_for(guilty.movie_id) == [o.class_name
                                                          for o in guilty.poster.objects]

    def test_row_level_lineage_recorded(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        lineage = LineageStore()
        parent = lineage.record_source("file://posters")
        scene = populate_scene_graph(posters.rows, perfect_models.vlm,
                                     lineage=lineage, parent_lid=parent)
        lids = [row["lid"] for row in scene.objects]
        assert all(lid is not None for lid in lids)
        assert lineage.parents_of(lids[0]) == [parent]

    def test_table_level_lineage_skips_row_lids(self, corpus, perfect_models):
        posters = corpus.to_tables()["poster_images"]
        lineage = LineageStore(level=LINEAGE_LEVEL_TABLE)
        scene = populate_scene_graph(posters.rows, perfect_models.vlm,
                                     lineage=lineage, parent_lid=None)
        assert all(row["lid"] is None for row in scene.objects)

    def test_rows_without_images_are_skipped(self, perfect_models):
        rows = [{"movie_id": 1, "image": None, "image_uri": "x"}]
        scene = populate_scene_graph(rows, perfect_models.vlm)
        assert len(scene.frames) == 0


class TestTextGraphPopulation:
    def test_entities_and_documents(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        text = populate_text_graph(plots.rows, perfect_models.ner)
        assert len(text.texts) == len(corpus)
        assert len(text.entities) > len(corpus)  # several entities per document
        assert text.entities.schema.column_names() == ["did", "eid", "lid", "cid", "canonical"]

    def test_entity_ids_unique_across_corpus(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        text = populate_text_graph(plots.rows, perfect_models.ner)
        eids = [row["eid"] for row in text.entities]
        assert len(eids) == len(set(eids))

    def test_mentions_reference_existing_entities(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        text = populate_text_graph(plots.rows, perfect_models.ner)
        entity_ids = {row["eid"] for row in text.entities}
        assert all(row["eid"] in entity_ids for row in text.mentions)

    def test_event_terms_for_guilty(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        text = populate_text_graph(plots.rows, perfect_models.ner)
        guilty = corpus.by_title("Guilty by Suspicion")
        events = set(text.event_terms_for(guilty.document_id))
        assert {"accused", "threat", "interrogation"} & events

    def test_relationships_reference_entities(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        text = populate_text_graph(plots.rows, perfect_models.ner)
        entity_ids = {row["eid"] for row in text.entities}
        for row in text.relationships:
            assert row["eid_i"] in entity_ids and row["eid_j"] in entity_ids

    def test_lineage_rows_recorded(self, corpus, perfect_models):
        plots = corpus.to_tables()["film_plot"]
        lineage = LineageStore()
        parent = lineage.record_source("file://plots")
        text = populate_text_graph(plots.rows, perfect_models.ner,
                                   lineage=lineage, parent_lid=parent)
        assert all(row["lid"] is not None for row in text.entities)


class TestViewPopulator:
    def test_load_corpus_registers_everything(self, corpus, perfect_models):
        catalog = Catalog()
        lineage = LineageStore()
        report = ViewPopulator(perfect_models, catalog, lineage).load_corpus(corpus)
        expected_views = {"image_objects", "image_relationships", "image_attributes",
                          "image_frames", "text_entities", "text_mentions",
                          "text_relationships", "text_attributes", "text_documents"}
        assert set(report.view_tables) == expected_views
        assert set(report.base_tables) == {"movie_table", "film_plot", "poster_images"}
        for name in expected_views | set(report.base_tables):
            assert catalog.has_table(name)
        assert "view population report" in report.describe()

    def test_base_tables_have_source_lineage(self, corpus, perfect_models):
        catalog = Catalog()
        lineage = LineageStore()
        report = ViewPopulator(perfect_models, catalog, lineage).load_corpus(corpus)
        movie_lid = report.base_tables["movie_table"]
        ancestors = lineage.ancestors_of(movie_lid)
        sources = [lineage.entries_for(a)[0].src_uri for a in ancestors]
        assert any(uri and uri.startswith("file://data/mmqa/") for uri in sources)

    def test_skip_view_population(self, corpus, perfect_models):
        catalog = Catalog()
        report = ViewPopulator(perfect_models, catalog, LineageStore()).load_corpus(
            corpus, populate_views=False)
        assert report.view_tables == {}
        assert not catalog.has_table("image_objects")

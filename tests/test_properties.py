"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.datamodel.lineage import LineageStore
from repro.models.embeddings import EmbeddingModel, cosine_similarity
from repro.models.lexicon import DEFAULT_LEXICON
from repro.relational.expressions import BinaryOp, col, lit
from repro.relational.operators import (
    AggregateSpec,
    aggregate,
    distinct,
    filter_rows,
    hash_join,
    limit,
    project,
    sort,
    union_all,
)
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, compare_values
from repro.utils.seed import SeededRNG, stable_hash
from repro.utils.text import estimate_tokens, tokenize, truncate

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
row_strategy = st.fixed_dictionaries({
    "movie_id": st.integers(min_value=1, max_value=50),
    "title": st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll"), whitelist_characters=" "),
                     min_size=1, max_size=12),
    "year": st.integers(min_value=1900, max_value=2030),
    "score": st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0,
                                            allow_nan=False, allow_infinity=False)),
})

rows_strategy = st.lists(row_strategy, min_size=1, max_size=25)

MOVIE_SCHEMA = Schema.of(("movie_id", "int"), ("title", "text"), ("year", "int"),
                         ("score", "float"))


def make_table(rows, name="t"):
    return Table(name, Schema(list(MOVIE_SCHEMA.columns)), rows)


# ---------------------------------------------------------------------------
# Utility invariants
# ---------------------------------------------------------------------------
class TestUtilityProperties:
    @given(st.text(), st.text())
    def test_stable_hash_equality_follows_input_equality(self, a, b):
        if a == b:
            assert stable_hash(a) == stable_hash(b)

    @given(st.integers())
    def test_seeded_rng_reproducible(self, seed):
        assert SeededRNG(seed).random() == SeededRNG(seed).random()

    @given(st.text(max_size=200), st.integers(min_value=4, max_value=50))
    def test_truncate_never_exceeds_limit(self, text, limit):
        assert len(truncate(text, limit)) <= max(limit, len(text) if len(text) <= limit else limit)

    @given(st.text(max_size=200))
    def test_tokenize_produces_lowercase_word_chars(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.replace("'", "").isalnum()

    @given(st.text(max_size=400))
    def test_estimate_tokens_nonnegative_and_monotone(self, text):
        assert estimate_tokens(text) >= 0
        assert estimate_tokens(text + "abcd") >= estimate_tokens(text)


# ---------------------------------------------------------------------------
# Relational invariants
# ---------------------------------------------------------------------------
class TestRelationalProperties:
    @given(rows_strategy)
    def test_insert_preserves_row_count_and_schema(self, rows):
        table = make_table(rows)
        assert len(table) == len(rows)
        for row in table:
            assert set(row) == set(MOVIE_SCHEMA.column_names())

    @given(rows_strategy, st.integers(min_value=1900, max_value=2030))
    def test_filter_partitions_rows(self, rows, threshold):
        table = make_table(rows)
        predicate = BinaryOp(">", col("year"), lit(threshold))
        kept = filter_rows(table, predicate)
        complement = filter_rows(table, BinaryOp("<=", col("year"), lit(threshold)))
        assert len(kept) + len(complement) == len(table)
        assert all(row["year"] > threshold for row in kept)

    @given(rows_strategy)
    def test_projection_keeps_cardinality_and_drops_columns(self, rows):
        table = make_table(rows)
        projected = project(table, ["title", "year"])
        assert len(projected) == len(table)
        assert projected.column_names() == ["title", "year"]

    @given(rows_strategy)
    def test_sort_is_a_permutation_and_ordered(self, rows):
        table = make_table(rows)
        ordered = sort(table, [("year", False)])
        assert sorted(r["movie_id"] for r in ordered) == sorted(r["movie_id"] for r in table)
        years = [r["year"] for r in ordered]
        assert years == sorted(years)

    @given(rows_strategy, st.integers(min_value=0, max_value=30))
    def test_limit_bounds_output(self, rows, count):
        table = make_table(rows)
        assert len(limit(table, count)) == min(count, len(table))

    @given(rows_strategy)
    def test_distinct_idempotent(self, rows):
        table = make_table(rows)
        once = distinct(table)
        twice = distinct(once)
        assert len(once) == len(twice)
        assert len(once) <= len(table)

    @given(rows_strategy)
    def test_union_all_length_additive(self, rows):
        table = make_table(rows)
        assert len(union_all(table, table)) == 2 * len(table)

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=25)
    def test_join_output_bounded_by_key_product(self, left_rows, right_rows):
        left = make_table(left_rows, "left_t")
        right = make_table(right_rows, "right_t")
        joined = hash_join(left, right, "movie_id", "movie_id")
        left_counts = {}
        for row in left:
            left_counts[row["movie_id"]] = left_counts.get(row["movie_id"], 0) + 1
        right_counts = {}
        for row in right:
            right_counts[row["movie_id"]] = right_counts.get(row["movie_id"], 0) + 1
        expected = sum(left_counts.get(key, 0) * right_counts.get(key, 0)
                       for key in set(left_counts) | set(right_counts))
        assert len(joined) == expected

    @given(rows_strategy)
    def test_aggregate_count_matches_group_sizes(self, rows):
        table = make_table(rows)
        grouped = aggregate(table, ["year"], [AggregateSpec("count", None, "n")])
        assert sum(row["n"] for row in grouped) == len(table)
        assert len(grouped) == len(table.distinct_values("year"))

    @given(rows_strategy)
    def test_serialization_roundtrip_preserves_rows(self, rows):
        table = make_table(rows)
        restored = Table.from_dict(table.to_dict())
        assert len(restored) == len(table)
        assert restored.column_names() == table.column_names()

    @given(st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8), st.none()),
           st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8), st.none()))
    def test_compare_values_antisymmetry(self, a, b):
        forward = compare_values(a, b)
        backward = compare_values(b, a)
        if forward is None or backward is None:
            return
        assert forward == -backward

    @given(st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                     st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                     st.booleans(), st.text(max_size=10)))
    def test_coerce_text_always_str(self, value):
        assert isinstance(coerce_value(value, DataType.TEXT), str)


# ---------------------------------------------------------------------------
# Columnar store invariants
# ---------------------------------------------------------------------------
mutation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), row_strategy),
        st.tuples(st.just("set_cell"), st.integers(min_value=0, max_value=10**6),
                  st.integers(min_value=1900, max_value=2030)),
        st.tuples(st.just("update"), st.integers(min_value=1900, max_value=2030),
                  st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("delete"), st.integers(min_value=1, max_value=50)),
        st.tuples(st.just("add_column"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("fork"), st.booleans()),
    ),
    max_size=20,
)


def _apply_mutations(table, model, operations):
    """Drive ``table`` and a plain list-of-dicts reference model through the
    same mutation sequence; returns (table, model, parent_snapshots)."""
    snapshots = []
    for operation in operations:
        kind = operation[0]
        if kind == "insert":
            row = dict(operation[1])
            table.insert(row)
            full = {name: row.get(name) for name in table.column_names()}
            model.append(full)
        elif kind == "set_cell" and model:
            index = operation[1] % len(model)
            table.rows[index]["year"] = operation[2]
            model[index]["year"] = operation[2]
        elif kind == "update":
            threshold, score = operation[1], operation[2]
            table.update_where(lambda r: r["year"] > threshold, {"score": score})
            for row in model:
                if row["year"] > threshold:
                    row["score"] = score
        elif kind == "delete":
            movie_id = operation[1]
            table.delete_where(lambda r: r["movie_id"] == movie_id)
            model[:] = [row for row in model if row["movie_id"] != movie_id]
        elif kind == "add_column":
            name = f"extra_{operation[1]}"
            if not table.schema.has_column(name):
                table.add_column(Column(name, DataType.INTEGER),
                                 default=operation[1])
                for row in model:
                    row[name] = operation[1]
        elif kind == "fork":
            snapshots.append((table, [dict(row) for row in table]))
            table = table.fork()
            model = [dict(row) for row in model]
    return table, model, snapshots


class TestColumnarProperties:
    @given(rows_strategy, mutation_strategy)
    @settings(max_examples=60)
    def test_row_api_matches_reference_model(self, rows, operations):
        """Randomized mutation sequences: the columnar table seen through the
        row API stays equivalent to a plain list-of-dicts reference model."""
        table = make_table(rows)
        model = [dict(row) for row in table]
        table, model, snapshots = _apply_mutations(table, model, operations)
        assert [dict(row) for row in table] == model
        # COW isolation: every pre-fork parent still holds its snapshot.
        for parent, snapshot in snapshots:
            assert [dict(row) for row in parent] == snapshot

    @given(rows_strategy, mutation_strategy)
    @settings(max_examples=60)
    def test_row_api_matches_column_api(self, rows, operations):
        """The row view and the column view of one table never disagree."""
        table = make_table(rows)
        table, _, _ = _apply_mutations(table, [dict(r) for r in table], operations)
        names = table.column_names()
        vectors = {name: table.column_values(name) for name in names}
        for i, row in enumerate(table):
            for name in names:
                assert row[name] == vectors[name][i]
        assert all(len(vector) == len(table) for vector in vectors.values())

    @given(rows_strategy, st.integers(min_value=1900, max_value=2030))
    @settings(max_examples=60)
    def test_fork_isolation_both_directions(self, rows, year):
        parent = make_table(rows)
        parent_snapshot = [dict(row) for row in parent]
        child = parent.fork()
        child.rows[0]["year"] = year
        child.update_where(lambda r: True, {"score": 0.5})
        assert [dict(row) for row in parent] == parent_snapshot
        child_snapshot = [dict(row) for row in child]
        parent.rows[0]["year"] = 1899
        parent.truncate()
        assert [dict(row) for row in child] == child_snapshot

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_untouched_fork_columns_stay_shared(self, rows):
        parent = make_table(rows)
        child = parent.fork()
        child.set_column("score", [None] * len(child))
        assert not parent.shares_column(child, "score")
        for name in ("movie_id", "title", "year"):
            assert parent.shares_column(child, name)
            assert parent.column(name) is child.column(name)


# ---------------------------------------------------------------------------
# Lineage invariants
# ---------------------------------------------------------------------------
class TestLineageProperties:
    @given(st.lists(st.sampled_from(["row", "table", "source"]), min_size=1, max_size=40))
    def test_lids_unique_and_parents_precede_children(self, operations):
        store = LineageStore()
        known = []
        for op in operations:
            if op == "source" or not known:
                known.append(store.record_source(f"file://{len(known)}"))
            elif op == "row":
                known.append(store.record_row("f", 1, known[-1]))
            else:
                known.append(store.record_table("g", 1, known[-2:]))
        lids = [entry.lid for entry in store.entries]
        assert len(set(known)) == len(known)
        for entry in store.entries:
            if entry.parent_lid is not None:
                assert entry.parent_lid < entry.lid

    @given(st.integers(min_value=2, max_value=30))
    def test_trace_covers_whole_chain(self, depth):
        store = LineageStore()
        current = store.record_source("file://root")
        chain = [current]
        for _ in range(depth):
            current = store.record_row("step", 1, current)
            chain.append(current)
        trace = store.trace(current, max_depth=depth + 5)
        assert {entry.lid for entry in trace} == set(chain)
        assert store.ancestors_of(current, max_depth=depth + 5) == list(reversed(chain[:-1]))


# ---------------------------------------------------------------------------
# Embedding invariants
# ---------------------------------------------------------------------------
class TestEmbeddingProperties:
    model = EmbeddingModel()

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_self_similarity_is_one(self, word):
        vector = self.model.embed_word(word)
        assert not vector.any() or abs(cosine_similarity(vector, vector) - 1.0) < 1e-9

    @given(st.lists(st.sampled_from(sorted(DEFAULT_LEXICON.terms_for("excitement"))[:20]),
                    min_size=1, max_size=6),
           st.lists(st.sampled_from(["garden", "tea", "dinner", "walk", "office"]),
                    min_size=0, max_size=6))
    @settings(max_examples=40)
    def test_match_fraction_bounds_and_monotonicity(self, exciting_terms, calm_terms):
        keywords = sorted(DEFAULT_LEXICON.terms_for("excitement"))[:15]
        mixed = exciting_terms + calm_terms
        score_mixed = self.model.match_fraction(keywords, mixed)
        score_exciting = self.model.match_fraction(keywords, exciting_terms)
        assert 0.0 <= score_mixed <= 1.0
        assert score_exciting >= score_mixed - 1e-9

"""Tests for true batched model execution (`repro.models.batching`).

Covers the tentpole contract at the model layer: every batchable kind's
``*_batch()`` entry point is element-wise identical to serial calls
(bit-identical embeddings, same entities/boxes/text), charged as a single
:class:`~repro.models.cost.BatchedModelCall` whose token cost is sub-linear
(one shared prompt/setup overhead per batch + per-item marginal cost), with
in-batch deduplication of identical members — plus the cost-meter
thread-safety satellite.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import build_movie_corpus
from repro.models.base import ModelSuite
from repro.models.batching import BatchMember, plan_batch
from repro.models.cost import BatchedModelCall, CostMeter


@pytest.fixture()
def suite():
    return ModelSuite.create(seed=42, cost_meter=CostMeter())


@pytest.fixture(scope="module")
def batch_corpus():
    return build_movie_corpus(size=8, seed=7)


def only_call(meter):
    assert len(meter) == 1, "a batch must charge exactly one ledger record"
    call = meter.calls[0]
    assert isinstance(call, BatchedModelCall)
    return call


class TestBatchSerialEquivalence:
    """`*_batch(items)` must never drift from the exact serial path."""

    def test_embeddings_bit_identical(self, suite, batch_corpus):
        texts = [m.plot for m in batch_corpus.movies]
        serial = [suite.embeddings.embed_text(t) for t in texts]
        batched = suite.embeddings.embed_text_batch(texts)
        assert len(serial) == len(batched)
        for a, b in zip(serial, batched):
            assert np.array_equal(a, b)          # bit-identical vectors

    def test_ner_same_entities(self, suite, batch_corpus):
        texts = [m.plot for m in batch_corpus.movies]
        serial = [suite.ner.extract(t) for t in texts]
        batched = suite.ner.extract_batch(texts)
        for a, b in zip(serial, batched):
            assert repr(a.entities) == repr(b.entities)
            assert repr(a.mentions) == repr(b.mentions)
            assert repr(a.relationships) == repr(b.relationships)
            assert repr(a.attributes) == repr(b.attributes)

    def test_detector_same_boxes(self, suite, batch_corpus):
        images = [m.poster for m in batch_corpus.movies]
        serial = [suite.detector.detect(i) for i in images]
        assert suite.detector.detect_batch(images) == serial

    def test_ocr_same_text(self, suite, batch_corpus):
        images = [m.poster for m in batch_corpus.movies]
        serial = [suite.ocr.extract_text(i) for i in images]
        assert suite.ocr.extract_text_batch(images) == serial

    def test_empty_batch_is_a_free_noop(self, suite):
        assert suite.ner.extract_batch([]) == []
        assert len(suite.cost_meter) == 0


class TestSublinearCost:
    def test_batch_charges_one_call_below_serial_price(self, suite, batch_corpus):
        images = [m.poster for m in batch_corpus.movies]
        serial_meter = CostMeter()
        suite.detector.cost_meter = serial_meter
        for image in images:
            suite.detector.detect(image)
        serial_tokens = serial_meter.total_tokens

        batch_meter = CostMeter()
        suite.detector.cost_meter = batch_meter
        suite.detector.detect_batch(images)
        call = only_call(batch_meter)
        assert call.batch_size == len(images)
        assert call.serial_tokens == serial_tokens
        assert call.total_tokens < serial_tokens
        # Sub-linear shape: one shared setup + per-item marginal cost.  The
        # detector charges 60/call with 32 shareable setup tokens, so the
        # batch must save (n-1) * 32.
        assert call.tokens_saved == (len(images) - 1) * 32
        assert batch_meter.batch_tokens_saved == call.tokens_saved

    def test_duplicate_members_share_one_computation(self, suite, batch_corpus):
        text = batch_corpus.movies[0].plot
        reference = suite.ner.extract(text)
        suite.cost_meter.reset()
        results = suite.ner.extract_batch([text] * 4)
        assert all(repr(r.entities) == repr(reference.entities) for r in results)
        call = only_call(suite.cost_meter)
        # One execution's content + one setup, but four members' serial price.
        assert call.serial_tokens > 3 * call.total_tokens
        # Members get private copies, not views of one object.
        assert results[0] is not results[1]

    def test_batch_latency_is_one_invocation(self, suite, batch_corpus):
        images = [m.poster for m in batch_corpus.movies]
        serial_meter = CostMeter()
        suite.ocr.cost_meter = serial_meter
        for image in images:
            suite.ocr.extract_text(image)
        batch_meter = CostMeter()
        suite.ocr.cost_meter = batch_meter
        suite.ocr.extract_text_batch(images)
        assert batch_meter.total_latency_s < serial_meter.total_latency_s

    def test_member_failure_propagates_from_direct_batch(self, suite):
        with pytest.raises(AttributeError):
            suite.ner.extract_batch([123])  # not a string: fails like serial
        assert len(suite.cost_meter) == 0   # nothing executed, nothing billed

    def test_partial_failure_still_bills_the_executed_members(self, suite,
                                                              batch_corpus):
        # A serial loop charges for the calls completed before the failure;
        # the batch does the same — bill the successful slice, then raise.
        text = batch_corpus.movies[0].plot
        with pytest.raises(AttributeError):
            suite.ner.extract_batch([text, 123])
        call = only_call(suite.cost_meter)
        assert call.batch_size == 1 and call.total_tokens > 0


class TestPlanBatch:
    class Stub:
        name = "stub:plan"
        BATCH_OVERHEAD_TOKENS = 10

        def __init__(self, meter):
            self.cost_meter = meter

        def work(self, item, purpose="work"):
            self.cost_meter.record(self.name, purpose, prompt_tokens=25,
                                   completion_tokens=5)
            return {"item": item}

        def boom(self, item):
            raise ValueError(f"bad {item}")

    def test_shares_sum_exactly_to_the_batch_price(self):
        model = self.Stub(CostMeter())
        members = [BatchMember(model=model, method="work", args=(i,), key=i)
                   for i in range(5)]
        plan = plan_batch(members)
        assert plan.size == 5
        # 5 distinct x (25 + 5) serial = 150; batched = 10 + 5 x (15 + 5).
        assert plan.serial_tokens == 150
        assert plan.total_tokens == 10 + 5 * 20
        charged = sum(o.charged_tokens for o in plan.outcomes)
        assert charged == plan.total_tokens
        assert sum(o.tokens_saved for o in plan.outcomes) == plan.tokens_saved
        # Pricing must not have charged the stub's own meter.
        assert len(model.cost_meter) == 0

    def test_failed_member_leaves_the_rest_alive(self):
        meter = CostMeter()
        ok_model = self.Stub(meter)
        members = [BatchMember(model=ok_model, method="work", args=(1,), key=1),
                   BatchMember(model=ok_model, method="boom", args=(2,), key=2),
                   BatchMember(model=ok_model, method="work", args=(3,), key=3)]
        plan = plan_batch(members)
        assert plan.size == 2
        assert plan.outcomes[0].result == {"item": 1}
        assert isinstance(plan.outcomes[1].error, ValueError)
        assert plan.outcomes[2].result == {"item": 3}

    def test_duplicates_of_a_failed_member_fail_identically(self):
        model = self.Stub(CostMeter())
        members = [BatchMember(model=model, method="boom", args=(1,), key="k"),
                   BatchMember(model=model, method="boom", args=(1,), key="k")]
        plan = plan_batch(members)
        assert plan.size == 0
        assert plan.outcomes[0].error is plan.outcomes[1].error


class TestCostMeterThreadSafety:
    def test_concurrent_record_and_summaries(self):
        # The batch leader's thread records member shares on follower
        # sessions' meters while the owning thread summarizes; hammer one
        # meter from a pool while the main thread reads it.
        meter = CostMeter()
        workers, per_worker = 8, 200
        start = threading.Barrier(workers + 1)

        def hammer(index):
            start.wait()
            for i in range(per_worker):
                if i % 3:
                    meter.record(f"m{index}", "hammer", 3, 2)
                else:
                    meter.record_batched(f"m{index}", "hammer", 3, 2,
                                         batch_size=4, serial_tokens=9)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(hammer, i) for i in range(workers)]
            start.wait()
            for _ in range(300):
                marker = meter.snapshot()
                assert meter.tokens_since(marker) >= 0
                assert meter.summary().calls == len(meter)
                assert meter.total_tokens >= 0
            for future in futures:
                future.result()

        assert len(meter) == workers * per_worker
        assert meter.total_tokens == workers * per_worker * 5

    def test_capture_is_thread_local(self):
        meter = CostMeter()
        inside = threading.Event()
        proceed = threading.Event()

        def other_thread():
            inside.wait(5)
            meter.record("other", "ledger", 7, 0)   # not captured
            proceed.set()

        thread = threading.Thread(target=other_thread)
        thread.start()
        with CostMeter.capture() as records:
            inside.set()
            assert proceed.wait(5)
            meter.record("mine", "captured", 3, 0)
        thread.join()
        assert [c.model for c in records] == ["mine"]
        assert [c.model for c in meter.calls] == ["other"]
        assert meter.total_tokens == 7

"""Tests for the durable FAO skill store (persistence, retrieval, revalidation)."""

from __future__ import annotations

import json
import shutil
import types

import pytest

from repro import KathDBConfig, build_movie_corpus
from repro.api.request import QueryOptions, QueryRequest
from repro.api.service import KathDBService
from repro.cli import parse_skill_store
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.errors import KathDBError
from repro.fao.profiler import ProfileResult
from repro.interaction.user import ScriptedUser
from repro.optimizer.profile_cache import ProfileCache
from repro.relational.storage import TableStorage
from repro.relational.table import Table
from repro.skills.backends import (
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
    backend_from_spec,
)
from repro.skills.record import (
    STATUS_DEMOTED,
    SkillRecord,
    node_fingerprint,
    schema_fingerprint,
    strip_patch_comments,
)
from repro.skills.retrieval import RetrievalIndex, record_key
from repro.skills.store import SkillStore
from repro.skills.validate import RevalidationOutcome
from repro.utils.io import atomic_write_text

SKILL_QUERY = "Rank every film by how exciting its plot is."
SKILL_CORPUS_SIZE = 10


# -- helpers ---------------------------------------------------------------------------

def run_skill_service(store_path, corpus_size=SKILL_CORPUS_SIZE, corpus_seed=7,
                      clarification=FLAGSHIP_CLARIFICATION):
    """One service restart against a durable store: load, query, shut down."""
    config = KathDBConfig(seed=7, monitor_enabled=False,
                          enable_skill_store=True,
                          skill_store_backend="file",
                          skill_store_path=store_path)
    service = KathDBService(config)
    service.load_corpus(build_movie_corpus(size=corpus_size, seed=corpus_seed))
    user = ScriptedUser({"exciting": clarification})
    response = service.query(QueryRequest(nl_query=SKILL_QUERY, user=user,
                                          options=QueryOptions(use_prepared=False)))
    stats = service.skill_stats()
    service.shutdown()
    return response, stats


def result_rows(response):
    """Result rows with the run-specific lineage ids stripped."""
    return [{k: v for k, v in row.items() if k != "lid"}
            for row in response.result.final_table.rows]


def make_record(fingerprint="feedfacefeedface", family="semantic_map",
                description="score each plot by how exciting it is",
                status="active") -> SkillRecord:
    return SkillRecord(
        fingerprint=fingerprint, family=family, variant="flagship",
        node={"name": "excitement", "description": description,
              "inputs": ["plots"], "output": "scored",
              "dependency_pattern": "1:1", "parameters": {}},
        function_parameters={}, source_text="def impl(rows):\n    return rows\n",
        schema_fingerprint="00" * 8, lexicon_fingerprint="11" * 8,
        profile={"tokens_per_row": 5.0, "runtime_per_row_s": 0.001,
                 "success_rate": 1.0, "samples": 1},
        verdict={"ok": True, "checked_semantics": True}, status=status)


@pytest.fixture(scope="module")
def cold_store(tmp_path_factory):
    """A populated file-backed store plus the cold run's response and stats."""
    store_path = tmp_path_factory.mktemp("skills") / "store"
    response, stats = run_skill_service(store_path)
    response.raise_for_error()
    return {"path": store_path, "rows": result_rows(response),
            "stats": stats, "optimize_tokens": response.optimize_tokens,
            "response": response}


def clone_store(cold_store, tmp_path):
    """A private copy of the cold store so tests cannot pollute each other."""
    target = tmp_path / "store"
    shutil.copytree(cold_store["path"], target)
    return target


# -- atomic writes (satellite a) -------------------------------------------------------

class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "deep" / "file.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_failure_leaves_original_and_no_temp(self, tmp_path):
        target = tmp_path / "file.json"
        atomic_write_text(target, "original")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # type: ignore[arg-type]
        assert target.read_text() == "original"
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_table_storage_save_is_atomic(self, tmp_path):
        storage = TableStorage(tmp_path)
        table = Table.from_rows("movies", [{"movie_id": 1, "title": "A"}])
        path = storage.save(table)
        assert storage.load("movies").rows == table.rows
        assert path.exists()
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_profile_cache_save_is_atomic(self, tmp_path):
        cache = ProfileCache(path=tmp_path / "profiles.json")
        cache.record("semantic_map", "flagship",
                     ProfileResult(function_name="f", variant="flagship",
                                   success=True, runtime_s=0.1, tokens_used=50,
                                   rows_in=5, rows_out=5))
        cache.save()
        assert list(tmp_path.glob(".*.tmp")) == []
        reloaded = ProfileCache(path=tmp_path / "profiles.json")
        assert reloaded.get("semantic_map", "flagship") is not None


# -- persistence backends --------------------------------------------------------------

class TestBackends:
    @pytest.fixture(params=["memory", "file", "sqlite"])
    def backend(self, request, tmp_path):
        if request.param == "memory":
            yield MemoryBackend()
        elif request.param == "file":
            yield FileBackend(tmp_path / "store")
        else:
            backend = SQLiteBackend(tmp_path / "skills.db")
            yield backend
            backend.close()

    def test_roundtrip(self, backend):
        assert backend.get("skill:abc") is None
        backend.put("skill:abc", {"value": 1})
        backend.put("skill:abc", {"value": 2})
        assert backend.get("skill:abc") == {"value": 2}
        assert backend.keys() == ["skill:abc"]
        assert backend.delete("skill:abc") is True
        assert backend.delete("skill:abc") is False
        assert backend.keys() == []

    def test_values_are_copies(self, backend):
        original = {"nested": {"n": 1}}
        backend.put("k", original)
        original["nested"]["n"] = 99
        assert backend.get("k") == {"nested": {"n": 1}}

    def test_durability_across_reopen(self, tmp_path):
        for fresh in (FileBackend(tmp_path / "f"), SQLiteBackend(tmp_path / "s.db")):
            fresh.put("skill:deadbeef", {"x": 1})
            fresh.close()
        assert FileBackend(tmp_path / "f").get("skill:deadbeef") == {"x": 1}
        reopened = SQLiteBackend(tmp_path / "s.db")
        assert reopened.get("skill:deadbeef") == {"x": 1}
        reopened.close()

    def test_file_backend_sanitizes_keys_reversibly(self, tmp_path):
        backend = FileBackend(tmp_path)
        backend.put("skill:a/b c", {"x": 1})
        # The filename is sanitized but the original key survives in the
        # envelope, so keys() reports it verbatim.
        assert backend.keys() == ["skill:a/b c"]
        (path,) = (tmp_path / "records").glob("*.skill")
        assert ":" not in path.name and "/" not in path.stem

    def test_file_backend_uses_skill_extension(self, tmp_path):
        # Record files must not be *.json: the legacy workspace test counts
        # json metadata sidecars against py.txt sources in the same tree.
        backend = FileBackend(tmp_path)
        backend.put("skill:abc", {"x": 1})
        assert list(tmp_path.rglob("*.json")) == []

    def test_backend_from_spec(self, tmp_path):
        assert backend_from_spec("memory").kind == "memory"
        assert backend_from_spec("file", tmp_path / "d").kind == "file"
        sqlite_backend = backend_from_spec("sqlite", tmp_path / "x.db")
        assert sqlite_backend.kind == "sqlite"
        sqlite_backend.close()
        with pytest.raises(ValueError):
            backend_from_spec("file")
        with pytest.raises(ValueError):
            backend_from_spec("bogus", tmp_path / "d")


# -- signatures and records ------------------------------------------------------------

class TestSignatures:
    def test_schema_fingerprint_ignores_rows(self):
        a = Table.from_rows("plots", [{"movie_id": 1, "plot": "x"}])
        b = Table.from_rows("plots", [{"movie_id": 2, "plot": "y"},
                                      {"movie_id": 3, "plot": "z"}])
        assert schema_fingerprint({"plots": a}) == schema_fingerprint({"plots": b})

    def test_schema_fingerprint_sees_columns(self):
        a = Table.from_rows("plots", [{"movie_id": 1, "plot": "x"}])
        b = Table.from_rows("plots", [{"movie_id": 1, "summary": "x"}])
        assert schema_fingerprint({"plots": a}) != schema_fingerprint({"plots": b})

    def test_node_fingerprint_sensitive_to_lexicon(self):
        record = make_record()
        node = types.SimpleNamespace(
            name="excitement", description="score each plot",
            inputs=("plots",), output="scored", dependency_pattern="1:1",
            parameters={})
        base = node_fingerprint("semantic_map", node, "aa" * 8, "bb" * 8)
        assert node_fingerprint("semantic_map", node, "aa" * 8, "cc" * 8) != base
        assert node_fingerprint("semantic_map", node, "dd" * 8, "bb" * 8) != base
        assert record.fingerprint != base  # sanity: helpers are independent

    def test_strip_patch_comments(self):
        source = "def f():\n    return 1\n# patched: guard nulls\n# patched: again\n"
        assert strip_patch_comments(source) == "def f():\n    return 1\n"
        assert strip_patch_comments("") == ""

    def test_record_roundtrip_ignores_unknown_fields(self):
        record = make_record()
        payload = record.to_dict()
        payload["future_field"] = "ignored"
        restored = SkillRecord.from_dict(payload)
        assert restored == record
        assert "semantic_map" in restored.describe()


# -- retrieval -------------------------------------------------------------------------

class TestRetrieval:
    def test_exact_skips_demoted(self):
        backend = MemoryBackend()
        index = RetrievalIndex(backend)
        record = make_record(status=STATUS_DEMOTED)
        backend.put(record_key(record.fingerprint), record.to_dict())
        assert index.exact(record.fingerprint) is None
        assert index.load(record.fingerprint).status == STATUS_DEMOTED

    def test_near_match_thresholds(self, fresh_models):
        backend = MemoryBackend()
        record = make_record()
        backend.put(record_key(record.fingerprint), record.to_dict())
        index = RetrievalIndex(backend, threshold=0.9)
        # Identical signature text embeds identically: similarity 1.0.
        found = index.near(record.family, record.signature_text, fresh_models)
        assert found is not None and found[1] == pytest.approx(1.0)
        # Other families are never candidates, however similar the text.
        assert index.near("aggregate", record.signature_text, fresh_models) is None
        # An unrelated predicate falls below the threshold.
        assert index.near(record.family,
                          "semantic_join match directors to award lists",
                          fresh_models) is None


# -- store-level behaviour -------------------------------------------------------------

class TestSkillStore:
    def test_production_failure_demotes_record(self):
        store = SkillStore()
        record = make_record()
        store.backend.put(record_key(record.fingerprint), record.to_dict())
        function = types.SimpleNamespace(skill_fingerprint=record.fingerprint)
        assert store.record_production_failure(function, "runtime blew up") is True
        stored = store.retrieval.load(record.fingerprint)
        assert stored.status == STATUS_DEMOTED
        assert "runtime blew up" in stored.last_error
        assert store.stats()["demotions"] == 1
        # Demotion is idempotent; unstamped functions are ignored.
        assert store.record_production_failure(function, "again") is False
        assert store.record_production_failure(types.SimpleNamespace(), "x") is False

    def test_len_counts_active_records_only(self):
        store = SkillStore()
        active = make_record(fingerprint="aa" * 8)
        demoted = make_record(fingerprint="bb" * 8, status=STATUS_DEMOTED)
        store.backend.put(record_key(active.fingerprint), active.to_dict())
        store.backend.put(record_key(demoted.fingerprint), demoted.to_dict())
        assert len(store) == 1
        assert "skill store" in store.describe()

    def test_profile_cache_shares_backend(self, tmp_path):
        backend = FileBackend(tmp_path / "store")
        cache = ProfileCache(backend=backend)
        cache.record("semantic_map", "flagship",
                     ProfileResult(function_name="f", variant="flagship",
                                   success=True, runtime_s=0.2, tokens_used=40,
                                   rows_in=4, rows_out=4))
        # A fresh cache over the same backend sees the entry (write-through).
        reloaded = ProfileCache(backend=FileBackend(tmp_path / "store"))
        entry = reloaded.get("semantic_map", "flagship")
        assert entry is not None and entry.tokens_per_row == pytest.approx(10.0)
        # save() without a path falls back to the backend location.
        assert cache.save() == backend.location


# -- configuration and CLI -------------------------------------------------------------

class TestConfiguration:
    def test_path_promotes_memory_backend_to_file(self, tmp_path):
        config = KathDBConfig(enable_skill_store=True,
                              skill_store_path=tmp_path / "skills")
        assert config.skill_store_backend == "file"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KathDBError):
            KathDBConfig(skill_store_backend="bogus")

    def test_durable_backend_requires_path(self):
        with pytest.raises(KathDBError):
            KathDBConfig(enable_skill_store=True, skill_store_backend="sqlite")

    def test_threshold_bounds(self):
        with pytest.raises(KathDBError):
            KathDBConfig(skill_retrieval_threshold=0.0)
        with pytest.raises(KathDBError):
            KathDBConfig(skill_retrieval_threshold=1.5)

    def test_cli_spec_parsing(self):
        assert parse_skill_store("memory") == {"enable_skill_store": True,
                                               "skill_store_backend": "memory"}
        parsed = parse_skill_store("sqlite:/tmp/s.db")
        assert parsed["skill_store_backend"] == "sqlite"
        assert parsed["skill_store_path"] == "/tmp/s.db"
        with pytest.raises(ValueError):
            parse_skill_store("file")          # durable backend without a path
        with pytest.raises(ValueError):
            parse_skill_store("bogus:/tmp/x")  # unknown backend

    def test_service_without_store(self):
        service = KathDBService(KathDBConfig(seed=7))
        assert service.skill_store is None
        assert service.skill_stats() is None
        service.shutdown()


# -- end-to-end: warm restarts, poisoning, lexicon drift -------------------------------

class TestDurableReuse:
    def test_cold_run_stores_skills(self, cold_store):
        stats = cold_store["stats"]
        assert stats["stores"] > 0
        assert stats["misses"] == stats["stores"]
        assert stats["exact_hits"] == 0
        records = list((cold_store["path"] / "records").glob("*.skill"))
        assert len(records) == stats["stores"]

    def test_response_surfaces_store_metadata(self, cold_store):
        response = cold_store["response"]
        assert response.skill_store_stats == cold_store["stats"]
        assert 0 < response.optimize_tokens <= response.prepare_tokens

    def test_sources_persist_through_store(self, cold_store):
        # Satellite (b): with no workspace configured, the store's file
        # backend is the single persistence path for function sources.
        sources = list(cold_store["path"].rglob("*.py.txt"))
        assert len(sources) >= cold_store["stats"]["stores"]

    def test_warm_restart_reuses_skills(self, cold_store, tmp_path):
        store = clone_store(cold_store, tmp_path)
        response, stats = run_skill_service(store)
        response.raise_for_error()
        assert stats["exact_hits"] == cold_store["stats"]["stores"]
        assert stats["misses"] == 0 and stats["stores"] == 0
        assert result_rows(response) == cold_store["rows"]
        # The acceptance bar: a warm prepare costs <= 10% of cold codegen+profiling.
        assert response.optimize_tokens <= 0.10 * cold_store["optimize_tokens"]

    def test_poisoned_record_demoted_and_regenerated(self, cold_store, tmp_path):
        # Satellite (c): stored code that no longer parses must be demoted and
        # silently regenerated, never surface an error.
        store = clone_store(cold_store, tmp_path)
        for path in (store / "records").glob("*.skill"):
            envelope = json.loads(path.read_text())
            envelope["record"]["source_text"] = "def broken(:\n"
            path.write_text(json.dumps(envelope))
        response, stats = run_skill_service(store)
        response.raise_for_error()
        assert stats["demotions"] == cold_store["stats"]["stores"]
        assert stats["exact_hits"] == 0
        assert stats["stores"] > 0  # regenerated and re-stored
        assert result_rows(response) == cold_store["rows"]

    def test_changed_lexicon_misses_exact(self, cold_store, tmp_path):
        # Satellite (c): the same query under a different clarification mutates
        # the lexicon, so the stored fingerprints no longer match exactly.
        store = clone_store(cold_store, tmp_path)
        response, stats = run_skill_service(
            store, clarification="exciting means the plot has courtroom scenes")
        response.raise_for_error()
        assert stats["exact_hits"] == 0
        assert stats["misses"] + stats["near_hits"] > 0

    def test_revalidation_failure_falls_back_to_codegen(self, cold_store, tmp_path,
                                                        monkeypatch):
        # Satellite (c): a candidate that fails revalidation mid-prepare must
        # fall through to fresh codegen without failing the query.
        from repro.skills.validate import RevalidationHarness

        def always_fail(self, record, function, node, inputs, context, profiler,
                        critic, monitor=None, exact=True, sample_size=None):
            return RevalidationOutcome(ok=False, reason="forced failure")

        monkeypatch.setattr(RevalidationHarness, "revalidate", always_fail)
        store = clone_store(cold_store, tmp_path)
        response, stats = run_skill_service(store)
        response.raise_for_error()
        assert stats["revalidation_failures"] > 0
        assert stats["exact_hits"] == 0 and stats["near_hits"] == 0
        assert stats["stores"] > 0
        assert result_rows(response) == cold_store["rows"]

    def test_cross_corpus_reuse(self, cold_store, tmp_path):
        # Schema fingerprints exclude row contents, so a different corpus with
        # the same relational shape still reuses the stored skills.
        store = clone_store(cold_store, tmp_path)
        response, stats = run_skill_service(store, corpus_size=SKILL_CORPUS_SIZE + 4,
                                            corpus_seed=11)
        response.raise_for_error()
        assert stats["exact_hits"] > 0 and stats["stores"] == 0
        assert len(response.result.final_table) == SKILL_CORPUS_SIZE + 4

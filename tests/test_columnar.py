"""Columnar store and copy-on-write overlay tests.

Covers the PR's acceptance points directly: the index staleness hole closed
by write-through row proxies, zero-copy forks (identity-verified shared
vectors), explicit column-granular blob sharing, ``lossy_columns``
propagation through forks and columnar round-trips, and on-disk round-trips
over every column type (legacy row-major files included).
"""

import json
import sys

import pytest

from repro.relational.indexes import HashIndex
from repro.relational.schema import Column, Schema
from repro.relational.storage import LossyBlobWarning, TableStorage
from repro.relational.table import Table
from repro.relational.types import DataType

MOVIES = Schema.of(("movie_id", "int"), ("title", "text"), ("year", "int"),
                   ("score", "float"))

ROWS = [
    {"movie_id": 1, "title": "Heat", "year": 1995, "score": 0.9},
    {"movie_id": 2, "title": "Ronin", "year": 1998, "score": 0.8},
    {"movie_id": 3, "title": "Drive", "year": 2011, "score": 0.7},
]


def movies(name="movies"):
    return Table(name, Schema(list(MOVIES.columns)), [dict(r) for r in ROWS])


# ---------------------------------------------------------------------------
# Index staleness: the hole the row-dict layout had
# ---------------------------------------------------------------------------
class TestIndexStaleness:
    def test_row_proxy_write_bumps_version(self):
        table = movies()
        before = table.non_append_version
        table.rows[0]["title"] = "Thief"
        assert table.non_append_version == before + 1

    def test_in_place_cell_write_refreshes_index(self):
        """Regression for the documented staleness hole: an in-place cell
        write through ``table.rows[i][col] = x`` used to leave a HashIndex
        serving stale positions because the row count never changed."""
        table = movies()
        index = HashIndex(table, "title")
        assert index.lookup_one("Heat")["movie_id"] == 1

        table.rows[0]["title"] = "Thief"

        assert index.lookup("Heat") == []
        assert index.lookup_one("Thief")["movie_id"] == 1

    def test_iterated_proxy_write_refreshes_index(self):
        table = movies()
        index = HashIndex(table, "year")
        for row in table:
            if row["movie_id"] == 2:
                row["year"] = 2000
        assert index.lookup("1998") == [] and index.lookup(1998) == []
        assert index.lookup_one(2000)["movie_id"] == 2

    def test_pure_appends_do_not_bump_and_index_extends(self):
        table = movies()
        index = HashIndex(table, "title")
        before = table.non_append_version
        table.insert({"movie_id": 4, "title": "Collateral", "year": 2004,
                      "score": 0.85})
        assert table.non_append_version == before
        assert index.lookup_one("Collateral")["movie_id"] == 4


# ---------------------------------------------------------------------------
# Copy-on-write forks
# ---------------------------------------------------------------------------
class TestCopyOnWrite:
    def test_fork_shares_every_column_vector(self):
        table = movies()
        fork = table.fork("overlay")
        for name in table.column_names():
            assert table.shares_column(fork, name)
            # Identity, not equality: the fork holds the *same* list object.
            assert table.column(name) is fork.column(name)

    def test_fork_is_o_columns_not_o_rows(self):
        table = movies()
        shared = sys.getsizeof(table.column("title"))
        fork = table.fork()
        # No per-row copy happened: the vector object (and hence its size)
        # is untouched, merely referenced from both stores.
        assert sys.getsizeof(fork.column("title")) == shared
        assert fork.column("title") is table.column("title")

    def test_write_copies_only_the_touched_column(self):
        table = movies()
        fork = table.fork()
        fork.set_column("score", [0.1, 0.2, 0.3])
        assert not table.shares_column(fork, "score")
        for untouched in ("movie_id", "title", "year"):
            assert table.shares_column(fork, untouched)
        assert table.column_values("score") == [0.9, 0.8, 0.7]
        assert fork.column_values("score") == [0.1, 0.2, 0.3]

    def test_isolation_child_writes_never_reach_parent(self):
        table = movies()
        snapshot = [dict(r) for r in table]
        fork = table.fork()
        fork.rows[0]["title"] = "Changed"
        fork.update_where(lambda r: r["year"] > 1996, {"score": 0.0})
        fork.delete_where(lambda r: r["movie_id"] == 3)
        fork.insert({"movie_id": 9, "title": "New", "year": 2020, "score": 0.5})
        assert [dict(r) for r in table] == snapshot

    def test_isolation_parent_writes_never_reach_child(self):
        table = movies()
        fork = table.fork()
        snapshot = [dict(r) for r in fork]
        table.rows[1]["year"] = 1900
        table.truncate()
        assert [dict(r) for r in fork] == snapshot

    def test_copy_alias_shares_blob_payloads_explicitly(self):
        schema = Schema([Column("movie_id", DataType.INTEGER),
                         Column("image", DataType.BLOB)])
        payload = bytes(range(256)) * 64
        table = Table("posters", schema,
                      [{"movie_id": 1, "image": payload},
                       {"movie_id": 2, "image": None}])
        clone = table.copy()
        assert table.shares_column(clone, "image")
        assert clone.column("image")[0] is payload
        clone.set_column("image", [None, None])
        assert not table.shares_column(clone, "image")
        assert table.column("image")[0] is payload


# ---------------------------------------------------------------------------
# lossy_columns propagation
# ---------------------------------------------------------------------------
class TestLossyPropagation:
    def _lossy_table(self):
        schema = Schema([Column("movie_id", DataType.INTEGER),
                         Column("image", DataType.BLOB)])
        table = Table("posters", schema,
                      [{"movie_id": 1, "image": b"\x00\x01"}])
        return Table.from_dict(table.to_dict())

    def test_restore_marks_blob_columns_lossy(self):
        restored = self._lossy_table()
        assert restored.lossy_columns == ["image"]
        assert restored.column_values("image") == [None]

    def test_fork_propagates_lossy_columns(self):
        restored = self._lossy_table()
        assert restored.fork().lossy_columns == ["image"]
        assert restored.copy().lossy_columns == ["image"]
        assert restored.head_table(1).lossy_columns == ["image"]

    def test_columnar_round_trip_carries_lossy_forward(self):
        """Once lossy, always marked: the blob values are already NULL on the
        second save, so only the explicit ``lossy_columns`` payload field can
        keep the flag alive."""
        restored = self._lossy_table()
        twice = Table.from_dict(restored.to_dict(orient="columnar"))
        assert twice.lossy_columns == ["image"]


# ---------------------------------------------------------------------------
# Storage round-trips
# ---------------------------------------------------------------------------
ALL_TYPES = Schema([
    Column("id", DataType.INTEGER),
    Column("name", DataType.TEXT),
    Column("rating", DataType.FLOAT),
    Column("active", DataType.BOOLEAN),
    Column("tags", DataType.JSON),
    Column("image", DataType.BLOB),
])

ALL_TYPE_ROWS = [
    {"id": 1, "name": "first", "rating": 0.5, "active": True,
     "tags": ["a", "b"], "image": b"\xde\xad"},
    {"id": 2, "name": "second", "rating": None, "active": False,
     "tags": {"k": [1, 2]}, "image": None},
    {"id": None, "name": "", "rating": -1.5, "active": None,
     "tags": None, "image": b""},
]


class TestStorageRoundTrip:
    def test_every_column_type_round_trips(self, tmp_path):
        storage = TableStorage(tmp_path)
        table = Table("everything", Schema(list(ALL_TYPES.columns)),
                      [dict(r) for r in ALL_TYPE_ROWS])
        storage.save(table)
        with pytest.warns(LossyBlobWarning):
            loaded = storage.load("everything")
        assert loaded.column_names() == table.column_names()
        assert len(loaded) == len(table)
        for name in ("id", "name", "rating", "active", "tags"):
            assert loaded.column_values(name) == table.column_values(name)
        # BLOBs are persisted as markers and restore as NULL, flagged.
        assert loaded.column_values("image") == [None, None, None]
        assert loaded.lossy_columns == ["image"]

    def test_saved_file_is_columnar(self, tmp_path):
        storage = TableStorage(tmp_path)
        path = storage.save(movies())
        payload = json.loads(path.read_text())
        assert payload["format"] == "columnar"
        assert payload["row_count"] == 3
        assert payload["columns"]["title"] == ["Heat", "Ronin", "Drive"]
        assert "rows" not in payload

    def test_legacy_row_major_file_still_loads(self, tmp_path):
        storage = TableStorage(tmp_path)
        table = movies()
        legacy = table.to_dict()  # historical row-major payload
        assert "rows" in legacy and "columns" not in legacy
        (tmp_path / "movies.json").write_text(json.dumps(legacy))
        loaded = storage.load("movies")
        assert [dict(r) for r in loaded] == [dict(r) for r in table]

    def test_blobless_round_trip_emits_no_warning(self, tmp_path):
        import warnings

        storage = TableStorage(tmp_path)
        storage.save(movies())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            loaded = storage.load("movies")
        assert loaded.lossy_columns == []

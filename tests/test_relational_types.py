"""Unit tests for relational data types and value coercion."""

import pytest

from repro.errors import SchemaError
from repro.relational.types import DataType, coerce_value, compare_values, is_compatible


class TestDataType:
    def test_from_string_aliases(self):
        assert DataType.from_string("int") is DataType.INTEGER
        assert DataType.from_string("VARCHAR") is DataType.TEXT
        assert DataType.from_string("double") is DataType.FLOAT
        assert DataType.from_string("bool") is DataType.BOOLEAN
        assert DataType.from_string("bytes") is DataType.BLOB
        assert DataType.from_string("object") is DataType.JSON

    def test_from_string_unknown_raises(self):
        with pytest.raises(SchemaError):
            DataType.from_string("uuid")

    def test_infer(self):
        assert DataType.infer(True) is DataType.BOOLEAN
        assert DataType.infer(3) is DataType.INTEGER
        assert DataType.infer(3.5) is DataType.FLOAT
        assert DataType.infer("x") is DataType.TEXT
        assert DataType.infer(b"x") is DataType.BLOB
        assert DataType.infer([1, 2]) is DataType.JSON


class TestCoerceValue:
    def test_none_passes_through(self):
        for data_type in DataType:
            assert coerce_value(None, data_type) is None

    def test_integer_coercion(self):
        assert coerce_value("7", DataType.INTEGER) == 7
        assert coerce_value(True, DataType.INTEGER) == 1

    def test_integer_strict_rejects_string(self):
        with pytest.raises(SchemaError):
            coerce_value("7", DataType.INTEGER, strict=True)

    def test_integer_bad_value_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("abc", DataType.INTEGER)

    def test_float_coercion(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0
        assert coerce_value("2.5", DataType.FLOAT) == 2.5

    def test_text_coercion(self):
        assert coerce_value(42, DataType.TEXT) == "42"

    def test_boolean_from_strings(self):
        assert coerce_value("true", DataType.BOOLEAN) is True
        assert coerce_value("No", DataType.BOOLEAN) is False

    def test_boolean_bad_string_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("maybe", DataType.BOOLEAN)

    def test_json_and_blob_pass_through(self):
        payload = {"a": [1, 2]}
        assert coerce_value(payload, DataType.JSON) is payload
        blob = object()
        assert coerce_value(blob, DataType.BLOB) is blob


class TestIsCompatible:
    def test_compatible_values(self):
        assert is_compatible(None, DataType.INTEGER)
        assert is_compatible(5, DataType.INTEGER)
        assert is_compatible("x", DataType.TEXT)

    def test_incompatible_value(self):
        assert not is_compatible("five", DataType.INTEGER)


class TestCompareValues:
    def test_none_sorts_first(self):
        assert compare_values(None, 1) == -1
        assert compare_values(1, None) == 1
        assert compare_values(None, None) == 0

    def test_numeric_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2.5, 2.5) == 0
        assert compare_values(3, 2) == 1

    def test_mixed_bool_int(self):
        assert compare_values(True, 1) == 0

    def test_incomparable_returns_none(self):
        assert compare_values("a", {"b": 1}) is None

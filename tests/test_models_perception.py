"""Unit tests for the perception models: VLM, NER, detector, OCR."""

import pytest

from repro.data.images import PosterGenerator
from repro.models.cost import CostMeter
from repro.models.detector import PixelObjectDetector
from repro.models.ner import EntityExtractor
from repro.models.ocr import OCRTextExtractor
from repro.models.vlm import SimulatedVLM

GUILTY_PLOT = (
    "Guilty by Suspicion follows David Merrill, a celebrated director accused of disloyalty. "
    "He is threatened during a brutal interrogation and ordered to name names. "
    "Merrill becomes a fugitive and a desperate writer dies after the attack."
)


@pytest.fixture()
def posters():
    generator = PosterGenerator(seed=3)
    return {
        "boring": generator.generate("A Quiet Film", "boring"),
        "vivid": generator.generate("Explosive Action", "vivid"),
    }


class TestSimulatedVLM:
    def test_scene_graph_structure(self, posters):
        vlm = SimulatedVLM(error_rate=0.0)
        graph = vlm.extract_scene_graph(posters["vivid"])
        assert len(graph["objects"]) == len(posters["vivid"].objects)
        for obj in graph["objects"]:
            assert set(obj) == {"class_name", "bbox", "attributes"}
        assert 0.0 <= graph["saturation"] <= 1.0

    def test_error_rate_drops_objects(self, posters):
        noisy = SimulatedVLM(error_rate=1.0)
        graph = noisy.extract_scene_graph(posters["vivid"])
        assert graph["objects"] == []
        assert graph["relationships"] == []

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            SimulatedVLM(error_rate=1.5)

    def test_deterministic_per_image(self, posters):
        a = SimulatedVLM(seed=1, error_rate=0.2).extract_scene_graph(posters["vivid"])
        b = SimulatedVLM(seed=1, error_rate=0.2).extract_scene_graph(posters["vivid"])
        assert a["objects"] == b["objects"]

    def test_boring_question(self, posters):
        vlm = SimulatedVLM(error_rate=0.0)
        assert vlm.answer_visual_question(posters["boring"], "Is this poster boring?")["answer"]
        assert not vlm.answer_visual_question(posters["vivid"], "Is this poster boring?")["answer"]

    def test_vivid_question_inverts(self, posters):
        vlm = SimulatedVLM(error_rate=0.0)
        assert vlm.answer_visual_question(posters["vivid"], "Is this poster exciting?")["answer"]

    def test_object_presence_question(self, posters):
        vlm = SimulatedVLM(error_rate=0.0)
        class_name = posters["vivid"].objects[0].class_name
        answer = vlm.answer_visual_question(posters["vivid"], f"Does it contain a {class_name}?")
        assert answer["answer"] is True

    def test_caption_mentions_objects(self, posters):
        vlm = SimulatedVLM(error_rate=0.0)
        caption = vlm.caption(posters["vivid"])
        assert caption.startswith("A poster showing")

    def test_cost_charged_per_call(self, posters):
        meter = CostMeter()
        vlm = SimulatedVLM(cost_meter=meter, error_rate=0.0)
        vlm.extract_scene_graph(posters["boring"])
        assert meter.total_tokens >= 420


class TestEntityExtractor:
    def test_person_extraction_and_coref(self):
        extractor = EntityExtractor()
        result = extractor.extract(GUILTY_PLOT)
        persons = result.entities_of_class("person")
        assert any(p.canonical == "David Merrill" for p in persons)
        merrill = [p for p in persons if p.canonical == "David Merrill"][0]
        surfaces = {m.surface for m in merrill.mentions}
        # The bare surname and at least one pronoun resolve to the same entity.
        assert "Merrill" in surfaces
        assert surfaces & {"He", "he", "him", "his"}

    def test_event_extraction(self):
        result = EntityExtractor().extract(GUILTY_PLOT)
        events = set(result.event_terms())
        assert {"accused", "threatened", "interrogation"} & events

    def test_mention_spans_point_into_text(self):
        result = EntityExtractor().extract(GUILTY_PLOT)
        for mention in result.mentions:
            start, end = mention.span
            assert GUILTY_PLOT[start:end].lower() == mention.surface.lower()

    def test_relationships_link_person_to_events(self):
        result = EntityExtractor().extract(GUILTY_PLOT)
        predicates = {r.predicate for r in result.relationships}
        assert "involved_in" in predicates

    def test_role_attribute(self):
        result = EntityExtractor().extract(GUILTY_PLOT)
        roles = [a.value for a in result.attributes if a.key == "role"]
        assert any("director" in role for role in roles)

    def test_empty_text(self):
        result = EntityExtractor().extract("")
        assert result.entities == [] and result.mentions == []

    def test_cost_charged(self):
        meter = CostMeter()
        EntityExtractor(cost_meter=meter).extract(GUILTY_PLOT)
        assert meter.total_tokens > 0


class TestPixelObjectDetector:
    def test_detects_regions_on_vivid_poster(self, posters):
        detector = PixelObjectDetector()
        result = detector.detect(posters["vivid"])
        assert result["objects"], "expected at least one detected region"
        assert all(obj["class_name"] == "region" for obj in result["objects"])

    def test_statistics_distinguish_styles(self, posters):
        detector = PixelObjectDetector()
        boring = detector.detect(posters["boring"])
        vivid = detector.detect(posters["vivid"])
        assert vivid["saturation"] > boring["saturation"]

    def test_cost_is_small(self, posters):
        meter = CostMeter()
        PixelObjectDetector(cost_meter=meter).detect(posters["boring"])
        assert 0 < meter.total_tokens < 420


class TestOCRTextExtractor:
    def test_reads_title_without_noise(self, posters):
        ocr = OCRTextExtractor(error_rate=0.0)
        result = ocr.extract_text(posters["boring"])
        assert result["text"] == "A Quiet Film"
        assert result["confidence"] == 1.0

    def test_noise_garbles_characters(self, posters):
        ocr = OCRTextExtractor(error_rate=1.0)
        result = ocr.extract_text(posters["vivid"])
        assert result["text"] != posters["vivid"].text_overlay
        assert result["confidence"] < 1.0

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            OCRTextExtractor(error_rate=-0.1)

    def test_deterministic(self, posters):
        a = OCRTextExtractor(error_rate=0.3, seed=5).extract_text(posters["vivid"])
        b = OCRTextExtractor(error_rate=0.3, seed=5).extract_text(posters["vivid"])
        assert a == b

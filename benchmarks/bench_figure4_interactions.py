"""Experiment F4 (paper Figure 4): NL-parser interactions in both modes.

Regenerates the proactive-clarification and reactive-correction dialogue of
Figure 4: the parser asks what 'exciting' means, the user answers, an 8-step
sketch is drafted, the user adds the recency preference, and an 11-step sketch
(v2) replaces it.  The benchmark measures the full interactive parsing loop.
"""

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY
from repro.interaction.channel import InteractionChannel, InteractionKind
from repro.parser.nl_parser import NLParser


def test_figure4_clarification_and_correction(benchmark):
    db = fresh_loaded_db()
    parser = NLParser(db.models)

    def parse():
        channel = InteractionChannel(make_flagship_user())
        outcome = parser.parse(FLAGSHIP_QUERY, channel)
        return outcome, channel

    outcome, channel = benchmark.pedantic(parse, rounds=3, iterations=1)

    # Proactive clarification: exactly the paper's question about 'exciting'.
    clarifications = channel.transcript.of_kind(InteractionKind.CLARIFICATION)
    assert clarifications
    assert "What does 'exciting' mean in this context?" in clarifications[0].system_message
    assert "uncommon" in clarifications[0].user_reply

    # Reactive correction: sketch v1 has 8 steps, v2 has 11 (paper Section 6).
    assert len(outcome.sketch_history[0]) == 8
    assert outcome.sketch.version == 2
    assert len(outcome.sketch) == 11
    assert outcome.clarification_rounds == 1
    assert outcome.correction_rounds == 1
    # The correction introduced the recency step.
    assert any("recency" in step.description.lower() for step in outcome.sketch)

    benchmark.extra_info["sketch_v1_steps"] = len(outcome.sketch_history[0])
    benchmark.extra_info["sketch_v2_steps"] = len(outcome.sketch)
    benchmark.extra_info["user_turns"] = channel.transcript.user_turns()

    print("\n[F4] NL parser interactions (proactive clarification + reactive correction)")
    print(channel.transcript.describe()[:600])
    print(f"  sketch v1 steps: {len(outcome.sketch_history[0])}  ->  "
          f"sketch v{outcome.sketch.version} steps: {len(outcome.sketch)}")

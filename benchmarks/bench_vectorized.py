"""Vectorized-execution benchmark: batched vs row-at-a-time model access.

PR 3 gave the simulated models true ``*_batch()`` entry points, but they only
fired when *concurrent* sessions collided in the micro-batch window.  This
benchmark measures the single-session payoff of routing the hot row loops —
corpus population (scene-graph extraction per poster, NER per plot document)
and the embeddings match-density scoring body — through the vectorized batch
client instead.

Both arms pin the gateway's exact cache and coalescing **off**, so every
saved token comes from true batched execution (one shared prompt/setup per
chunk, per-member marginal cost), not from cache reuse:

* **serial** — ``enable_vectorized_execution=False``: population and the
  query's FAO bodies issue one model call per row, full serial price.
* **vectorized** — the default: the same work arrives as column vectors,
  one ``BatchedModelCall`` per chunk.

The workload is one service corpus load plus one single-session
embeddings-scoring query ("Rank every film by how exciting its plot is.").
Result rows — the query's final table *and* every populated view — must be
bit-identical across arms; the record lands in ``BENCH_vectorized.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_vectorized.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_vectorized.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_vectorized.json"

#: An embeddings-heavy ranking query: its execution path is dominated by the
#: batchable match-density scoring body (no VLM calls).
SCORING_QUERY = "Rank every film by how exciting its plot is."

FULL_CORPUS = 28
QUICK_CORPUS = 12


def run_arm(corpus, vectorized: bool) -> Dict:
    """Load the corpus and run the scoring query in one session."""
    service = KathDBService(KathDBConfig(
        seed=7, monitor_enabled=False, explore_variants=False,
        enable_model_cache=False, enable_request_coalescing=False,
        enable_vectorized_execution=vectorized))
    timer = Timer()
    with timer:
        service.load_corpus(corpus)
        population_tokens = service.total_tokens()
        session = service.session()
        response = session.query(QueryRequest(
            nl_query=SCORING_QUERY,
            user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION})))
    assert response.ok, response.error
    views = {name: [dict(row) for row in service.catalog.table(name)]
             for name in sorted(service.catalog.table_names())}
    arm = {
        "elapsed_s": round(timer.elapsed, 4),
        "population_tokens": population_tokens,
        "prepare_tokens": response.prepare_tokens,
        "execute_tokens": response.execute_tokens,
        "total_tokens": (population_tokens + response.prepare_tokens
                         + response.execute_tokens),
        "gateway_stats": service.gateway_stats(),
        "rows": [dict(row) for row in response.result.final_table],
        "views": views,
    }
    service.shutdown()
    return arm


def run_benchmark(corpus_size: int = FULL_CORPUS) -> Dict:
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    serial = run_arm(corpus, vectorized=False)
    vectorized = run_arm(corpus, vectorized=True)

    # Pop unconditionally before comparing: rows/views hold objects (poster
    # images) that must never reach the JSON record, even on a mismatch.
    serial_rows, vectorized_rows = serial.pop("rows"), vectorized.pop("rows")
    serial_views, vectorized_views = serial.pop("views"), vectorized.pop("views")
    identical = (serial_rows == vectorized_rows
                 and serial_views == vectorized_views)
    return {
        "workload": ("corpus population + embeddings-scoring query, "
                     "single session, cache+coalescing off"),
        "corpus_size": corpus_size,
        "query": SCORING_QUERY,
        "serial": serial,
        "vectorized": vectorized,
        "population_token_reduction": round(
            serial["population_tokens"] / max(vectorized["population_tokens"], 1), 3),
        "token_reduction": round(
            serial["total_tokens"] / max(vectorized["total_tokens"], 1), 3),
        "row_identical": identical,
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    batches = record["vectorized"]["gateway_stats"].get("batches", 0)
    return (f"[vectorized] corpus {record['corpus_size']}: "
            f"serial {record['serial']['total_tokens']} tokens vs "
            f"vectorized {record['vectorized']['total_tokens']} tokens "
            f"({batches} batched invocations) -> "
            f"{record['token_reduction']:.2f}x fewer tokens "
            f"({record['population_token_reduction']:.2f}x on population), "
            f"row-identical={record['row_identical']}")


def test_vectorized_halves_single_session_tokens():
    """Vectorized execution must clear the gate's floors (>= 2x tokens)."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("vectorized", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=None, help="corpus size")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (CI smoke run; >= 1.5x gate)")
    args = parser.parse_args()
    size = args.size or (QUICK_CORPUS if args.quick else FULL_CORPUS)
    record = run_benchmark(corpus_size=size)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("vectorized", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Durable skill-store benchmark: warm-restart prepare cost vs cold codegen.

PR 6 gave KathDB a durable FAO skill store: every implementation that survives
the codegen -> profile -> critic loop is persisted (code + signature
fingerprint + cached profile + verdict), and later prepares consult the store
before generating.  This benchmark measures the contract on four arms, each a
*fresh service process* pointed at the same file-backed store:

* **cold** — empty store: every operator pays full codegen + profiling.
* **warm** — restart over the populated store, same corpus: every operator
  must exact-hit and revalidate (sampled re-execution, no codegen calls), so
  the optimizer's token bill must collapse to <= 10% of the cold run while
  the result rows stay identical.
* **cross_corpus** — restart over a *different* corpus with the same
  relational shape: fingerprints exclude row contents, so skills still hit.
* **poisoned** — every stored record's source is corrupted before the
  restart: the store must demote the broken records and silently regenerate,
  never failing the query.

The record lands in ``BENCH_fao_store.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_fao_store.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_fao_store.py -q
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.api.request import QueryOptions
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_fao_store.json"

#: The embeddings-scoring query: its prepare phase compiles a multi-operator
#: FAO pipeline (filters, scoring map, ranking), all of it skill-storable.
SCORING_QUERY = "Rank every film by how exciting its plot is."

FULL_CORPUS = 28
QUICK_CORPUS = 12


def run_arm(store_path: Path, corpus_size: int, corpus_seed: int = 7) -> Dict:
    """One service restart against the durable store: load, query, shut down."""
    service = KathDBService(KathDBConfig(
        seed=7, monitor_enabled=False,
        enable_skill_store=True,
        skill_store_backend="file",
        skill_store_path=store_path))
    timer = Timer()
    with timer:
        service.load_corpus(build_movie_corpus(size=corpus_size, seed=corpus_seed))
        response = service.query(QueryRequest(
            nl_query=SCORING_QUERY,
            user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}),
            options=QueryOptions(use_prepared=False)))
    assert response.ok, response.error
    arm = {
        "elapsed_s": round(timer.elapsed, 4),
        "optimize_tokens": response.optimize_tokens,
        "prepare_tokens": response.prepare_tokens,
        "execute_tokens": response.execute_tokens,
        "skills": response.skill_store_stats,
        "rows": [{k: v for k, v in row.items() if k != "lid"}
                 for row in response.result.final_table],
    }
    service.shutdown()
    return arm


def poison_store(store_path: Path) -> int:
    """Corrupt every stored record's source text; returns how many."""
    poisoned = 0
    for path in (store_path / "records").glob("*.skill"):
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["record"]["source_text"] = "def broken(:\n"
        path.write_text(json.dumps(envelope), encoding="utf-8")
        poisoned += 1
    return poisoned


def run_benchmark(corpus_size: int = FULL_CORPUS) -> Dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench_fao_store_"))
    try:
        store = workdir / "skills"
        cold = run_arm(store, corpus_size)
        warm = run_arm(store, corpus_size)
        cross = run_arm(store, corpus_size + 6, corpus_seed=11)
        poisoned_records = poison_store(store)
        poisoned = run_arm(store, corpus_size)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # Pop the row lists unconditionally: they hold image objects/floats that
    # must never reach the committed JSON record.
    rows: Dict[str, List] = {name: arm.pop("rows") for name, arm in
                             (("cold", cold), ("warm", warm),
                              ("cross", cross), ("poisoned", poisoned))}
    return {
        "workload": ("prepare cold vs warm-across-restart vs cross-corpus vs "
                     "poisoned store; fresh service per arm, one file store"),
        "corpus_size": corpus_size,
        "query": SCORING_QUERY,
        "cold": cold,
        "warm": warm,
        "cross_corpus": cross,
        "poisoned": {
            **poisoned,
            "records_poisoned": poisoned_records,
            "row_identical": rows["poisoned"] == rows["cold"],
        },
        "warm_token_reduction": round(
            cold["optimize_tokens"] / max(warm["optimize_tokens"], 1), 3),
        "row_identical": rows["warm"] == rows["cold"],
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    warm = record["warm"]["skills"]
    poisoned = record["poisoned"]
    return (f"[fao_store] corpus {record['corpus_size']}: "
            f"cold optimize {record['cold']['optimize_tokens']} tokens vs "
            f"warm {record['warm']['optimize_tokens']} tokens -> "
            f"{record['warm_token_reduction']:.1f}x fewer "
            f"({warm['exact_hits']} exact hits, "
            f"row-identical={record['row_identical']}); "
            f"cross-corpus {record['cross_corpus']['skills']['exact_hits']} hits; "
            f"poisoned: {poisoned['skills']['demotions']} demoted, "
            f"{poisoned['skills']['stores']} regenerated, "
            f"row-identical={poisoned['row_identical']}")


def test_warm_restart_collapses_prepare_tokens():
    """The durable store must clear the gate's floors (warm <= 10% of cold)."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("fao_store", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=None, help="corpus size")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (CI smoke run)")
    args = parser.parse_args()
    size = args.size or (QUICK_CORPUS if args.quick else FULL_CORPUS)
    record = run_benchmark(corpus_size=size)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("fao_store", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment F1 (paper Figure 1): the full end-to-end architecture walk-through.

Measures one complete pass through every component shown in Figure 1 -- query
parser (with the human-AI clarification/correction loop), logical plan
generation and verification, cost-based physical planning with coder/profiler/
critic, execution with lineage recording, and the explainer -- and records the
per-stage token costs.
"""

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY


def test_figure1_end_to_end_pipeline(benchmark):
    def run():
        db = fresh_loaded_db()
        population_tokens = db.total_tokens()
        result = db.query(FLAGSHIP_QUERY, user=make_flagship_user())
        explanation = db.explain_pipeline(result)
        tuple_explanation = db.explain_tuple(result, result.rows()[0]["lid"])
        return db, result, explanation, tuple_explanation, population_tokens

    db, result, explanation, tuple_explanation, population_tokens = benchmark.pedantic(
        run, rounds=3, iterations=1)

    # Every Figure 1 component produced its artifact.
    assert result.sketch is not None and len(result.sketch) == 11
    assert result.logical_plan is not None and len(result.logical_plan) == 10
    assert result.physical_plan is not None and len(result.physical_plan) == 10
    assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]
    assert result.lineage.summary()["total"] > 0
    assert explanation.startswith("How KathDB answered")
    assert tuple_explanation.produced_by == "combine_scores"

    by_purpose = db.cost_meter.by_purpose()
    benchmark.extra_info["population_tokens"] = population_tokens
    benchmark.extra_info["query_tokens"] = result.total_tokens
    benchmark.extra_info["total_tokens"] = db.total_tokens()
    benchmark.extra_info["result_rows"] = len(result.final_table)

    print("\n[F1] end-to-end pipeline over the flagship query")
    print(f"  view population tokens : {population_tokens}")
    print(f"  query execution tokens : {result.total_tokens}")
    print(f"  grand total tokens     : {db.total_tokens()}")
    print("  top tokens by purpose:")
    for purpose, summary in sorted(by_purpose.items(), key=lambda kv: -kv[1].total_tokens)[:8]:
        print(f"    {purpose:<28} {summary.total_tokens:>8}")

"""Experiment F5 (paper Figure 5): coarse- and fine-grained result explanations.

Regenerates both explanation modes over the flagship query result: the
coarse pipeline overview (one entry per transformation, including the
classify-boring and ranking steps the paper excerpts) and the fine-grained
per-tuple explanation of the top result (lid, producing function, per-field
derivations including the 0.7/0.3 weighted sum, and the derivation chain).
"""


def test_figure5_coarse_explanation(benchmark, bench_db, bench_flagship_result):
    text = benchmark(bench_db.explain_pipeline, bench_flagship_result)
    lines = text.splitlines()
    assert lines[0].startswith("How KathDB answered")
    # One numbered entry per executed operator (10 for the flagship plan).
    assert len(lines) - 1 == len(bench_flagship_result.physical_plan)
    lowered = text.lower()
    assert "boring" in lowered and "rank" in lowered and "recency" in lowered
    benchmark.extra_info["explanation_steps"] = len(lines) - 1
    print("\n[F5-coarse] pipeline explanation")
    print(text)


def test_figure5_fine_grained_explanation(benchmark, bench_db, bench_flagship_result):
    result = bench_flagship_result
    top_lid = result.rows()[0]["lid"]

    explanation = benchmark(bench_db.explain_tuple, result, top_lid)

    assert explanation.lid == top_lid
    assert explanation.produced_by == "combine_scores"
    text = explanation.describe()
    # The Figure 5 ingredients: the weighted sum with the paper's weights, the
    # recency assignment, the keyword evidence, and the poster classification.
    assert "weighted sum" in text and "0.7" in text and "0.3" in text
    assert "recency_score" in text
    assert "excitement_score" in text
    assert "boring" in text
    assert "derivation chain" in text
    assert "def combine_scores" in text

    benchmark.extra_info["field_derivations"] = len(explanation.field_derivations)
    benchmark.extra_info["ancestry_depth"] = len(explanation.ancestry)

    print(f"\n[F5-fine] explanation of tuple lid={top_lid}")
    print(text)


def test_figure5_nl_questions_over_lineage(benchmark, bench_db, bench_flagship_result):
    """The NL channel over lineage that Figure 5's dialogue uses."""
    result = bench_flagship_result
    lid = result.rows()[0]["lid"]

    def ask_all():
        return (
            bench_db.ask("Explain the full pipeline?", result),
            bench_db.ask(f"Explain tuple {lid}?", result),
            bench_db.ask("Which function produced 'final_score'?", result),
        )

    pipeline_answer, tuple_answer, column_answer = benchmark(ask_all)
    assert pipeline_answer.startswith("How KathDB answered")
    assert f"lid={lid}" in tuple_answer
    assert "combine_scores" in column_answer

"""Observability overhead benchmark: tracing on vs off.

One workload, recorded to ``BENCH_observability.json``: the same warmed
query batch is served through two otherwise-identical services — one
with ``enable_tracing=False`` (every ``span(...)`` site takes the no-op
path: a single contextvar read) and one with the default tracing on
(full span trees, registry histograms, ring-buffer sink).  Measured reps
*interleave* between the arms so load drift cannot bias either one.  The
contract:

* **wall overhead <= 5%** — arm means over the k quietest ABBA-ordered
  rep pairs, traced vs untraced (see :func:`run_benchmark` for why that
  estimator);
* **token overhead <= 1%** — spans never call models, so the traced
  arm's token bill must match the untraced arm's (observed: exactly 0%);
* **row-identical output** — instrumentation must not perturb results;
* the traced arm's Chrome ``trace_event`` export (the committed
  ``sample.trace.json``) is valid JSON with at least one slice, so it
  loads in ``chrome://tracing`` / Perfetto.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
from pathlib import Path
from typing import Dict, List

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_observability.json"
SAMPLE_TRACE_PATH = Path(__file__).parent / "sample.trace.json"

BORING_QUERY = "Which films have a boring poster?"
RANKING_QUERY = "Rank every film by how exciting its plot is."

#: Acceptance budgets (percent over the untraced arm).
WALL_BUDGET_PCT = 5.0
TOKEN_BUDGET_PCT = 1.0


def make_requests(count: int) -> List[QueryRequest]:
    """A mixed request stream: both queries exercise distinct span shapes."""
    queries = (BORING_QUERY, RANKING_QUERY)
    return [QueryRequest(nl_query=queries[index % len(queries)],
                         user=ScriptedUser(
                             {"exciting": FLAGSHIP_CLARIFICATION}))
            for index in range(count)]


def build_arm(corpus, tracing: bool, requests: int, jobs: int):
    """One warmed service: prepared-plan and gateway caches hot, so every
    measured rep runs the identical steady-state path — where per-span
    overhead matters most (cold compilation would bury it)."""
    # A small session-ledger bound: every request runs in a throwaway
    # session, and letting the gateway's tracked set grow toward its
    # 4096-entry default all run would tax later reps with an ever-larger
    # GC-scanned heap in *both* arms — plateau it during warmup instead.
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         explore_variants=False,
                                         enable_tracing=tracing,
                                         service_max_workers=jobs,
                                         gateway_max_tracked_sessions=64))
    service.load_corpus(corpus)
    # Warm until well past trace-ring capacity: the first batch compiles
    # plans and fills the gateway cache; the rest bring the arm to sink
    # and GC steady state (the ring's contents are medium-lived, so the
    # collector needs a few ring generations before promotion/collection
    # cadence settles).  Measuring while the ring still grows would
    # charge the traced arm for a transient a long-running service never
    # sees.  Both arms run the same batch count for symmetry.
    batches = max(3, -(-2 * service.config.trace_buffer_size // requests) + 2)
    for _ in range(batches):
        warmup = service.query_batch(make_requests(requests), jobs=jobs)
        assert all(r.ok for r in warmup), \
            next(r.error for r in warmup if not r.ok)
    return service


def measure_rep(service, requests: int, jobs: int):
    """One measured batch: (wall seconds, tokens, result rows).

    The cyclic collector is paused during the timed region (``timeit``'s
    convention) and runs between reps instead: whether a multi-ms full
    collection of the warmed heap lands inside a measured batch is a
    coin flip that swamps the microsecond-scale effect under test.
    Allocation and refcount costs — the per-span price — remain fully
    timed; with a frozen heap the measured overhead is ~0%, so what
    pausing excludes is collection *scheduling* noise, not tracing cost.
    """
    gc.collect()
    gc.disable()
    timer = Timer()
    try:
        with timer:
            responses = service.query_batch(make_requests(requests),
                                            jobs=jobs)
    finally:
        gc.enable()
    assert all(r.ok for r in responses)
    tokens = sum(r.total_tokens for r in responses)
    rows = [[dict(row) for row in r.result.final_table] for r in responses]
    return timer.elapsed, tokens, rows


def run_benchmark(corpus_size: int = 48, requests: int = 24, reps: int = 41,
                  jobs: int = 2, wall_budget_pct: float = WALL_BUDGET_PCT,
                  token_budget_pct: float = TOKEN_BUDGET_PCT,
                  sample_path: Path = SAMPLE_TRACE_PATH) -> Dict:
    """Paired ABBA comparison, robust to a noisy host.

    Both arms are built up front and each rep runs both, alternating
    which goes first (off-on, on-off, ...) so iteration-phase effects
    (GC debt, frequency scaling) cannot systematically tax one arm.  The
    wall estimate compares arm means over the k *quietest pairs* — the
    reps with the smallest combined off+on wall.  Selecting whole pairs
    (rather than each arm's fastest reps independently) keeps the two
    samples time-adjacent, so a load burst that taxes one arm's quiet
    window cannot masquerade as tracing overhead; scheduler noise on a
    shared machine is strictly additive, so the quietest pairs bound the
    intrinsic cost.
    """
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    services = {False: build_arm(corpus, False, requests, jobs),
                True: build_arm(corpus, True, requests, jobs)}
    walls: Dict[bool, List[float]] = {False: [], True: []}
    tokens: Dict[bool, int] = {False: 0, True: 0}
    rows: Dict[bool, List] = {False: None, True: None}
    for rep in range(reps):
        order = (False, True) if rep % 2 == 0 else (True, False)
        for tracing in order:
            wall, rep_tokens, rep_rows = measure_rep(
                services[tracing], requests, jobs)
            walls[tracing].append(wall)
            tokens[tracing] += rep_tokens
            rows[tracing] = rep_rows

    fastest_k = max(3, reps // 3)
    quietest = sorted(range(reps),
                      key=lambda i: walls[False][i] + walls[True][i])
    selected = sorted(quietest[:fastest_k])

    def arm_record(tracing: bool) -> Dict:
        return {
            "tracing": tracing,
            "rep_walls_s": [round(w, 5) for w in walls[tracing]],
            "median_wall_s": round(statistics.median(walls[tracing]), 5),
            "paired_k_mean_s": round(statistics.mean(
                walls[tracing][i] for i in selected), 5),
            "tokens": tokens[tracing],
        }

    off, on = arm_record(False), arm_record(True)
    wall_overhead = ((on["paired_k_mean_s"] - off["paired_k_mean_s"])
                     / max(off["paired_k_mean_s"], 1e-9) * 100.0)
    traced = services[True]
    snapshot = traced.metrics_snapshot()
    on["spans_recorded"] = sum(
        count for name, count in snapshot["counters"].items()
        if name.startswith("spans."))
    on["query_latency"] = snapshot["histograms"]["latency_ms.query"]
    on["chrome_events"] = traced.export_chrome_trace(sample_path)
    identical = rows[False] == rows[True]
    for service in services.values():
        service.shutdown()
    token_overhead = ((on["tokens"] - off["tokens"])
                      / max(off["tokens"], 1) * 100.0)

    # The exported sample must be a loadable trace_event file.
    payload = json.loads(sample_path.read_text(encoding="utf-8"))
    slices = [e for e in payload.get("traceEvents", []) if e.get("ph") == "X"]

    return {
        "workload": (f"{requests} mixed queries x {reps} reps, "
                     f"{jobs} workers, warmed caches"),
        "corpus_size": corpus_size,
        "requests": requests,
        "reps": reps,
        "jobs": jobs,
        "wall_budget_pct": wall_budget_pct,
        "token_budget_pct": token_budget_pct,
        "tracing_off": off,
        "tracing_on": on,
        "wall_overhead_pct": round(wall_overhead, 2),
        "fastest_k": fastest_k,
        "selected_reps": selected,
        "token_overhead_pct": round(token_overhead, 4),
        "within_wall_budget": wall_overhead <= wall_budget_pct,
        "within_token_budget": abs(token_overhead) <= token_budget_pct,
        "row_identical": identical,
        "chrome_trace": {
            "path": sample_path.name,
            "events": len(slices),
            "valid_json": True,
        },
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    on, off = record["tracing_on"], record["tracing_off"]
    return (f"[observability] {record['requests']} queries x {record['reps']} "
            f"reps: untraced {off['paired_k_mean_s'] * 1000:.1f} ms vs traced "
            f"{on['paired_k_mean_s'] * 1000:.1f} ms "
            f"({record['wall_overhead_pct']:+.1f}% wall, "
            f"{record['token_overhead_pct']:+.2f}% tokens, "
            f"{on.get('spans_recorded', 0)} spans) -> "
            f"row-identical={record['row_identical']}, "
            f"chrome events={record['chrome_trace']['events']}")


def test_tracing_overhead_within_budget():
    """Tracing on must stay within the gate's wall/token budgets."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("observability", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=48, help="corpus size")
    parser.add_argument("--requests", type=int, default=24,
                        help="queries per measured rep")
    parser.add_argument("--reps", type=int, default=41, help="measured reps")
    parser.add_argument("--jobs", type=int, default=2, help="worker threads")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload with a looser wall budget "
                             "(CI smoke run; sub-10ms reps make the 5% bar "
                             "scheduler-noise-bound)")
    args = parser.parse_args()
    if args.quick:
        record = run_benchmark(corpus_size=8, requests=8, reps=3,
                               jobs=args.jobs, wall_budget_pct=30.0)
    else:
        record = run_benchmark(corpus_size=args.size, requests=args.requests,
                               reps=args.reps, jobs=args.jobs)
    print(report(record))
    if not args.quick:
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("observability", record,
                             shape="quick" if args.quick else "full")
    for failure in failures:
        print(f"GATE VIOLATION: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation A3 (paper Section 4, cost optimization): physical implementation choice.

The same logical operator (classify a poster as boring, or score a plot's
excitement) can be implemented in several ways -- a per-poster VLM query vs a
scene-statistics classifier, or embedding similarity vs plain keyword overlap.
Each implementation is a distinct function version with its own cost and
accuracy; the optimizer "profiles these implementations on sample input
records and chooses the one that produces acceptable outputs at the lowest
cost".

This benchmark forces each variant in turn, measures tokens and accuracy
against the corpus ground truth, and checks that the cost/accuracy ordering
the optimizer relies on actually holds.

Expected shape: the VLM-query classifier is the most accurate and by far the
most expensive; the scene-statistics classifier is nearly as accurate at a
fraction of the cost (so the default optimizer picks it); keyword overlap is
cheapest and least accurate for excitement scoring.
"""

import pytest

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY, ranking_accuracy

CLASSIFIER_VARIANTS = ["scene_statistics", "cascade", "vlm_query"]
SCORER_VARIANTS = ["embedding_similarity", "keyword_overlap"]


@pytest.mark.parametrize("variant", CLASSIFIER_VARIANTS)
def test_a3_classify_boring_variants(benchmark, variant, bench_corpus):
    db = fresh_loaded_db(explore_variants=False,
                         variant_overrides={"classify_boring": variant})

    def run_query():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)

    record = result.record_for("classify_boring")
    assert record.function_variant == variant

    # Boring-poster classification accuracy against ground truth.
    flagged = result.intermediates["films_with_boring_flag"]
    truth = bench_corpus.ground_truth_boring()
    correct = sum(1 for row in flagged
                  if bool(row["boring_poster"]) == truth[row["movie_id"]])
    accuracy = correct / len(flagged)
    assert accuracy >= 0.85

    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["classify_tokens"] = record.tokens
    benchmark.extra_info["boring_accuracy"] = round(accuracy, 3)

    print(f"\n[A3] classify_boring variant={variant:<18} tokens={record.tokens:>7} "
          f"accuracy={accuracy:.3f} top2={result.titles()[:2]}")


def test_a3_vlm_variant_costs_more_than_scene_statistics(benchmark, bench_corpus):
    """The cost ordering the optimizer exploits must hold."""

    def run_both():
        costs = {}
        for variant in CLASSIFIER_VARIANTS:
            db = fresh_loaded_db(explore_variants=False,
                                 variant_overrides={"classify_boring": variant})
            result = db.query(FLAGSHIP_QUERY, user=make_flagship_user())
            costs[variant] = result.record_for("classify_boring").tokens
        return costs

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert results["vlm_query"] > 10 * max(1, results["scene_statistics"])
    # The cascade escalates only uncertain posters, so it sits strictly between
    # the cheap classifier and the per-poster VLM query.
    assert results["scene_statistics"] <= results["cascade"] <= results["vlm_query"]
    benchmark.extra_info.update(results)
    print(f"\n[A3] classify_boring token cost: {results}")


@pytest.mark.parametrize("variant", SCORER_VARIANTS)
def test_a3_excitement_scorer_variants(benchmark, variant, bench_corpus):
    db = fresh_loaded_db(explore_variants=False,
                         variant_overrides={"gen_excitement_score": variant})

    def run_query():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)
    assert result.record_for("gen_excitement_score").function_variant == variant

    expected = [m.title for m in bench_corpus.ground_truth_ranking()]
    accuracy = ranking_accuracy(result.titles(), expected, top_k=2)
    tokens = result.record_for("gen_excitement_score").tokens

    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["top2_accuracy"] = accuracy
    benchmark.extra_info["scorer_tokens"] = tokens
    if variant == "embedding_similarity":
        assert accuracy == 1.0

    print(f"\n[A3] gen_excitement_score variant={variant:<22} tokens={tokens:>7} "
          f"top2_accuracy={accuracy:.2f}")

"""Scheduler benchmark: hog-tenant isolation and fair-share throughput.

Measures what the multi-tenant fair-share scheduler buys over the flat
worker pool it replaced.  One hog tenant floods the service with a deep
backlog and three light tenants each submit a couple of requests *after*
the flood; every request is its own concurrent session.  Under the flat
pool the light tenants queue FIFO behind the hog's entire backlog, so
their end-to-end latency is the whole makespan.  Under deficit round-robin
the scheduler interleaves tenants, bounding the light tenants' time in
queue by the hog's *share* rather than its backlog.

Two committed ratios:

* ``fairness_gain`` — light-tenant p95 end-to-end latency, flat pool over
  scheduler.  The acceptance bar is >= 2.0 (scheduler p95 at most half the
  flat pool's).
* ``speedup`` — scheduler-arm throughput over fully serial submission.
  Fairness must not cost throughput: the floor is the 3.6x the flat pool
  already held in ``BENCH_concurrency.json``.

Simulated model calls sleep their synthetic latency (the gateway and
vectorized execution are off, matching the concurrency benchmark) so the
worker pool overlaps real waits; the prepared-query cache is warm in every
arm so compilation never skews the latency percentiles.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduler.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import (
    KathDBConfig,
    KathDBService,
    QueryRequest,
    ScriptedUser,
)
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_scheduler.json"
#: Sleep each model call's synthetic latency times this factor.  Pinned to
#: the same 1x the concurrency benchmark uses so this benchmark's speedup is
#: directly comparable to the 3.6x floor BENCH_concurrency.json committed.
LATENCY_SCALE = 1.0
HOG = "hog"
LIGHT_TENANTS = ("light-a", "light-b", "light-c")


def make_request(tenant: str) -> QueryRequest:
    """One flagship request billed to ``tenant`` (own scripted user)."""
    return QueryRequest(nl_query=FLAGSHIP_QUERY,
                        user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                          [FLAGSHIP_CORRECTION]),
                        tenant_id=tenant)


def make_service(corpus_size: int, workers: int, scheduler: bool,
                 latency_scale: float) -> KathDBService:
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         explore_variants=False,
                                         enable_model_gateway=False,
                                         enable_vectorized_execution=False,
                                         enable_scheduler=scheduler,
                                         service_max_workers=workers,
                                         simulate_model_latency=latency_scale))
    service.load_corpus(build_movie_corpus(size=corpus_size, seed=7))
    warmup = service.query(make_request(HOG))
    assert warmup.ok, warmup.error
    return service


def submission_plan(total: int, light_tenants: Tuple[str, ...],
                    per_light: int = 2) -> List[str]:
    """Tenant labels in submission order: the hog's flood first, then the
    light tenants trickling in behind it."""
    light = [tenant for tenant in light_tenants for _ in range(per_light)]
    return [HOG] * (total - len(light)) + light


def run_concurrent(service: KathDBService, plan: List[str],
                   ) -> Tuple[float, Dict[str, List[float]], List]:
    """Submit the whole plan at once; per-request end-to-end latency is
    measured caller-side (submit -> future resolved), so time spent queued
    inside either dispatch path counts."""
    latencies: Dict[str, List[float]] = {tenant: [] for tenant in set(plan)}
    futures = []
    timer = Timer()
    with timer:
        for tenant in plan:
            submitted = time.perf_counter()
            future = service.submit(make_request(tenant))
            # Stamp completion from the dispatching thread itself: reading
            # the futures sequentially afterwards would charge every early
            # finisher for the whole makespan.
            future.add_done_callback(
                lambda _f, t=tenant, s=submitted: latencies[t].append(
                    (time.perf_counter() - s) * 1000.0))
            futures.append(future)
        responses = [future.result(timeout=600) for future in futures]
    assert all(r.ok for r in responses), \
        [r.error for r in responses if not r.ok]
    return timer.elapsed, latencies, responses


def p95(values: List[float]) -> float:
    ordered = sorted(values)
    return ordered[int(0.95 * (len(ordered) - 1))]


def light_values(latencies: Dict[str, List[float]]) -> List[float]:
    return [value for tenant, values in latencies.items()
            if tenant != HOG for value in values]


def run_benchmark(corpus_size: int = 20, requests: int = 32, workers: int = 4,
                  latency_scale: float = LATENCY_SCALE,
                  light_tenants: Tuple[str, ...] = LIGHT_TENANTS) -> Dict:
    """Serial vs flat-pool vs scheduler arms; returns the recorded metrics."""
    plan = submission_plan(requests, light_tenants)

    sched_service = make_service(corpus_size, workers, scheduler=True,
                                 latency_scale=latency_scale)
    # Serial baseline (one request in flight ever) on the scheduler service,
    # so the speedup ratio includes any admission overhead twice over.
    serial_timer = Timer()
    with serial_timer:
        serial = [sched_service.query(make_request(tenant)) for tenant in plan]
    assert all(r.ok for r in serial)

    sched_wall, sched_lat, sched_responses = run_concurrent(sched_service, plan)
    sched_stats = sched_service.scheduler_stats()
    queue_p95 = p95([r.queue_ms for r in sched_responses])

    flat_service = make_service(corpus_size, workers, scheduler=False,
                                latency_scale=latency_scale)
    flat_wall, flat_lat, flat_responses = run_concurrent(flat_service, plan)

    reference = serial[0].result.rows()
    identical = all(r.result.rows() == reference
                    for r in serial + sched_responses + flat_responses)

    serial_qps = requests / max(serial_timer.elapsed, 1e-9)
    sched_qps = requests / max(sched_wall, 1e-9)
    flat_qps = requests / max(flat_wall, 1e-9)
    sched_light_p95 = p95(light_values(sched_lat))
    flat_light_p95 = p95(light_values(flat_lat))
    record = {
        "workload": "flagship query, one hog tenant + "
                    f"{len(light_tenants)} light tenants",
        "corpus_size": corpus_size,
        "requests": requests,
        "hog_requests": plan.count(HOG),
        "light_requests": len(plan) - plan.count(HOG),
        "workers": workers,
        "latency_scale": latency_scale,
        "serial_s": round(serial_timer.elapsed, 4),
        "serial_qps": round(serial_qps, 3),
        "flat": {
            "wall_s": round(flat_wall, 4),
            "qps": round(flat_qps, 3),
            "light_p95_ms": round(flat_light_p95, 1),
            "hog_p95_ms": round(p95(flat_lat[HOG]), 1),
        },
        "scheduler": {
            "wall_s": round(sched_wall, 4),
            "qps": round(sched_qps, 3),
            "light_p95_ms": round(sched_light_p95, 1),
            "hog_p95_ms": round(p95(sched_lat[HOG]), 1),
            "queue_p95_ms": round(queue_p95, 1),
            "admitted": sched_stats["admitted"],
            "completed": sched_stats["completed"],
            "shed": sched_stats["shed"],
            "expired": sched_stats["expired"],
        },
        "fairness_gain": round(flat_light_p95 / max(sched_light_p95, 1e-9), 3),
        "speedup": round(sched_qps / serial_qps, 3),
        "row_identical": identical,
    }
    sched_service.shutdown()
    flat_service.shutdown()
    return record


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    return (f"[scheduler] {record['requests']} requests "
            f"({record['hog_requests']} hog / {record['light_requests']} light), "
            f"{record['workers']} workers: light p95 "
            f"{record['flat']['light_p95_ms']:.0f} ms flat vs "
            f"{record['scheduler']['light_p95_ms']:.0f} ms scheduled "
            f"-> {record['fairness_gain']:.2f}x fairer, "
            f"{record['speedup']:.2f}x over serial, "
            f"row-identical={record['row_identical']}")


def test_scheduler_isolates_light_tenants_without_losing_throughput():
    """The committed contract: fairness >= 2x, throughput >= the flat
    pool's own 3.6x concurrency floor, rows identical across all arms."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("scheduler", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=20, help="corpus size")
    parser.add_argument("--requests", type=int, default=32,
                        help="total concurrent sessions")
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument("--scale", type=float, default=LATENCY_SCALE,
                        help="simulated model latency scale")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and batch (CI smoke run)")
    args = parser.parse_args()
    light = LIGHT_TENANTS
    if args.quick:
        args.size, args.requests, args.workers = 12, 12, 2
        light = LIGHT_TENANTS[:2]
    record = run_benchmark(corpus_size=args.size, requests=args.requests,
                           workers=args.workers, latency_scale=args.scale,
                           light_tenants=light)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("scheduler", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Model-gateway benchmark: gateway on vs off under a repeated workload.

Serves the same 8-request × 4-worker flagship batch twice — once through a
service whose model gateway is disabled (every session pays the full model
cost) and once with the gateway on (shared exact cache + in-flight
coalescing + micro-batching; semantic tier off, so results are bit-identical)
— and records the token reduction and throughput change to
``BENCH_gateway.json``.

Simulated model calls sleep their synthetic latency (like a hosted model's
network wait), so the wall-clock numbers measure what the gateway actually
avoids: re-executing identical foundation-model requests.  The prepared-plan
cache is warmed in both arms, isolating *model execution* cost from
compilation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.utils.timer import Timer

RESULT_PATH = Path(__file__).parent / "BENCH_gateway.json"
LATENCY_SCALE = 1.0


def make_requests(count: int) -> List[QueryRequest]:
    return [QueryRequest(nl_query=FLAGSHIP_QUERY,
                         user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                           [FLAGSHIP_CORRECTION]))
            for _ in range(count)]


def run_arm(corpus, gateway: bool, requests: int, jobs: int,
            latency_scale: float) -> Dict:
    """Warm the prepared cache, then serve the batch; returns measurements."""
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         explore_variants=False,
                                         enable_model_gateway=gateway,
                                         simulate_model_latency=latency_scale))
    service.load_corpus(corpus)
    warmup = service.query_batch(make_requests(1), jobs=1)[0]
    assert warmup.ok, warmup.error

    timer = Timer()
    with timer:
        responses = service.query_batch(make_requests(requests), jobs=jobs)
    assert all(r.ok for r in responses)

    arm = {
        "elapsed_s": round(timer.elapsed, 4),
        "qps": round(requests / max(timer.elapsed, 1e-9), 3),
        "batch_tokens": sum(r.total_tokens for r in responses),
        "gateway_stats": service.gateway_stats(),
        "rows": [[dict(row) for row in r.result.final_table] for r in responses],
    }
    service.shutdown()
    return arm


def run_benchmark(corpus_size: int = 20, requests: int = 8, jobs: int = 4,
                  latency_scale: float = LATENCY_SCALE) -> Dict:
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    off = run_arm(corpus, gateway=False, requests=requests, jobs=jobs,
                  latency_scale=latency_scale)
    on = run_arm(corpus, gateway=True, requests=requests, jobs=jobs,
                 latency_scale=latency_scale)

    identical = off.pop("rows") == on.pop("rows")
    token_reduction = off["batch_tokens"] / max(on["batch_tokens"], 1)
    return {
        "workload": "flagship query x%d, movie corpus, %d workers" % (requests, jobs),
        "corpus_size": corpus_size,
        "requests": requests,
        "jobs": jobs,
        "latency_scale": latency_scale,
        "semantic_tier": "off",
        "gateway_off": off,
        "gateway_on": on,
        "token_reduction": round(token_reduction, 3),
        "throughput_gain": round(on["qps"] / max(off["qps"], 1e-9), 3),
        "row_identical": identical,
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    return (f"[gateway] {record['requests']} requests x {record['jobs']} workers: "
            f"off {record['gateway_off']['batch_tokens']} tokens "
            f"({record['gateway_off']['qps']:.2f} q/s) vs "
            f"on {record['gateway_on']['batch_tokens']} tokens "
            f"({record['gateway_on']['qps']:.2f} q/s) -> "
            f"{record['token_reduction']:.1f}x fewer tokens, "
            f"{record['throughput_gain']:.2f}x throughput, "
            f"row-identical={record['row_identical']}")


def test_gateway_halves_tokens_and_improves_throughput():
    """Gateway on must cut batch tokens >= 2x with identical rows."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    assert record["row_identical"], "gateway must not change any result row"
    assert record["token_reduction"] >= 2.0, \
        f"expected >= 2x token cut, got {record['token_reduction']:.2f}x"
    assert record["throughput_gain"] > 1.0, \
        f"expected improved throughput, got {record['throughput_gain']:.2f}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=20, help="corpus size")
    parser.add_argument("--requests", type=int, default=8, help="batch size")
    parser.add_argument("--jobs", type=int, default=4, help="worker threads")
    parser.add_argument("--scale", type=float, default=LATENCY_SCALE,
                        help="simulated model latency scale")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and batch (CI smoke run)")
    args = parser.parse_args()
    if args.quick:
        # 4 requests over 2 workers: the off arm needs two latency waves,
        # the on arm one execution plus hits — a structural throughput gap
        # (4 requests over 4 workers is one wave either way, leaving the
        # exit-code gate to scheduler noise).
        args.size, args.requests, args.jobs = 12, 4, 2
    record = run_benchmark(corpus_size=args.size, requests=args.requests,
                           jobs=args.jobs, latency_scale=args.scale)
    if args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full 8x4 workload, which a quick run must not overwrite.
        print(report(record))
    else:
        save(record)
        print(report(record))
        print(f"wrote {RESULT_PATH}")
    ok = (record["row_identical"] and record["token_reduction"] >= 2.0
          and record["throughput_gain"] > 1.0)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

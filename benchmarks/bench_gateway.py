"""Model-gateway benchmark: gateway on vs off, and batching on vs off.

Two workloads, both recorded to ``BENCH_gateway.json``:

* **gateway** — serves the same 8-request × 4-worker flagship batch twice,
  once through a service whose model gateway is disabled (every session pays
  the full model cost) and once with the gateway on (shared exact cache +
  in-flight coalescing + micro-batching; semantic tier off, so results are
  bit-identical), recording the token reduction and throughput change.

* **batching** — isolates the micro-batcher: the exact cache and coalescing
  are pinned *off in both arms*, so every saved token comes from true
  batched execution (one shared prompt/setup overhead per batch, per-member
  marginal cost, in-batch dedup of identical members).  An embeddings-heavy
  ranking query is served by 8 concurrent sessions with micro-batching on
  vs off; the batched arm's sub-linear token bill lands in the ledger as
  :class:`~repro.models.cost.BatchedModelCall` records.

Simulated model calls sleep their synthetic latency (like a hosted model's
network wait), so the wall-clock numbers measure what the gateway actually
avoids: re-executing identical foundation-model requests.  The prepared-plan
cache is warmed in both arms, isolating *model execution* cost from
compilation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_gateway.json"
LATENCY_SCALE = 1.0

# The batching workload: an embeddings-heavy ranking query (no VLM calls in
# its execution path, so the batchable kinds dominate the token bill).
BATCHING_QUERY = "Rank every film by how exciting its plot is."
BATCH_WINDOW_S = 0.01


def make_requests(count: int) -> List[QueryRequest]:
    return [QueryRequest(nl_query=FLAGSHIP_QUERY,
                         user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                           [FLAGSHIP_CORRECTION]))
            for _ in range(count)]


def run_arm(corpus, gateway: bool, requests: int, jobs: int,
            latency_scale: float) -> Dict:
    """Warm the prepared cache, then serve the batch; returns measurements."""
    # Vectorized execution is pinned off in both arms: it cheapens even the
    # gateway-off arm (un-routed suites batch through the models' *_batch
    # planners), which would compress the ratio this workload exists to
    # measure — cross-session cache/coalescing dedup over serial traffic.
    # bench_vectorized.py measures the single-session batching effect.  The
    # semantic tier (on by default since its ANN graduation) is pinned off
    # too: this workload's contract is bit-identical rows from exact
    # caching alone; bench_semantic.py measures the near-match tier.
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         explore_variants=False,
                                         enable_model_gateway=gateway,
                                         enable_semantic_cache=False,
                                         enable_vectorized_execution=False,
                                         simulate_model_latency=latency_scale))
    service.load_corpus(corpus)
    warmup = service.query_batch(make_requests(1), jobs=1)[0]
    assert warmup.ok, warmup.error

    timer = Timer()
    with timer:
        responses = service.query_batch(make_requests(requests), jobs=jobs)
    assert all(r.ok for r in responses)

    arm = {
        "elapsed_s": round(timer.elapsed, 4),
        "qps": round(requests / max(timer.elapsed, 1e-9), 3),
        "batch_tokens": sum(r.total_tokens for r in responses),
        "gateway_stats": service.gateway_stats(),
        "rows": [[dict(row) for row in r.result.final_table] for r in responses],
    }
    service.shutdown()
    return arm


def run_benchmark(corpus_size: int = 20, requests: int = 8, jobs: int = 4,
                  latency_scale: float = LATENCY_SCALE) -> Dict:
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    off = run_arm(corpus, gateway=False, requests=requests, jobs=jobs,
                  latency_scale=latency_scale)
    on = run_arm(corpus, gateway=True, requests=requests, jobs=jobs,
                 latency_scale=latency_scale)

    identical = off.pop("rows") == on.pop("rows")
    token_reduction = off["batch_tokens"] / max(on["batch_tokens"], 1)
    return {
        "workload": "flagship query x%d, movie corpus, %d workers" % (requests, jobs),
        "corpus_size": corpus_size,
        "requests": requests,
        "jobs": jobs,
        "latency_scale": latency_scale,
        "semantic_tier": "off",
        "gateway_off": off,
        "gateway_on": on,
        "token_reduction": round(token_reduction, 3),
        "throughput_gain": round(on["qps"] / max(off["qps"], 1e-9), 3),
        "row_identical": identical,
    }


def run_batching_arm(corpus, batching: bool, requests: int, jobs: int,
                     latency_scale: float) -> Dict:
    """One batching-workload arm: cache and coalescing off, batching on/off."""
    # Vectorized execution pinned off in both arms (see run_arm): this
    # workload isolates window-formed micro-batches from *concurrent serial*
    # calls; single-session vectorized batching is bench_vectorized.py's.
    service = KathDBService(KathDBConfig(
        seed=7, monitor_enabled=False, explore_variants=False,
        enable_model_cache=False, enable_request_coalescing=False,
        enable_semantic_cache=False,
        enable_micro_batching=batching,
        enable_vectorized_execution=False,
        gateway_batch_window_s=BATCH_WINDOW_S if batching else None,
        simulate_model_latency=latency_scale,
        service_max_workers=jobs))
    service.load_corpus(corpus)

    def make(count: int) -> List[QueryRequest]:
        return [QueryRequest(nl_query=BATCHING_QUERY,
                             user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}))
                for _ in range(count)]

    warmup = service.query_batch(make(1), jobs=1)[0]
    assert warmup.ok, warmup.error
    timer = Timer()
    with timer:
        responses = service.query_batch(make(requests), jobs=jobs)
    assert all(r.ok for r in responses)
    arm = {
        "elapsed_s": round(timer.elapsed, 4),
        "qps": round(requests / max(timer.elapsed, 1e-9), 3),
        "batch_tokens": sum(r.total_tokens for r in responses),
        "gateway_stats": service.gateway_stats(),
        "rows": [[dict(row) for row in r.result.final_table] for r in responses],
    }
    service.shutdown()
    return arm


def run_batching_benchmark(corpus_size: int = 16, requests: int = 8,
                           jobs: int = 8,
                           latency_scale: float = LATENCY_SCALE) -> Dict:
    """Micro-batching on vs off with the cache and coalescing pinned off."""
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    off = run_batching_arm(corpus, batching=False, requests=requests,
                           jobs=jobs, latency_scale=latency_scale)
    on = run_batching_arm(corpus, batching=True, requests=requests,
                          jobs=jobs, latency_scale=latency_scale)
    identical = off.pop("rows") == on.pop("rows")
    return {
        "workload": "excitement ranking x%d, %d workers, cache+coalescing off"
                    % (requests, jobs),
        "corpus_size": corpus_size,
        "requests": requests,
        "jobs": jobs,
        "latency_scale": latency_scale,
        "batch_window_s": BATCH_WINDOW_S,
        "batching_off": off,
        "batching_on": on,
        "token_reduction": round(
            off["batch_tokens"] / max(on["batch_tokens"], 1), 3),
        "throughput_gain": round(on["qps"] / max(off["qps"], 1e-9), 3),
        "row_identical": identical,
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    return (f"[gateway] {record['requests']} requests x {record['jobs']} workers: "
            f"off {record['gateway_off']['batch_tokens']} tokens "
            f"({record['gateway_off']['qps']:.2f} q/s) vs "
            f"on {record['gateway_on']['batch_tokens']} tokens "
            f"({record['gateway_on']['qps']:.2f} q/s) -> "
            f"{record['token_reduction']:.1f}x fewer tokens, "
            f"{record['throughput_gain']:.2f}x throughput, "
            f"row-identical={record['row_identical']}")


def report_batching(record: Dict) -> str:
    saved = record["batching_on"]["gateway_stats"].get("batch_token_savings", 0)
    return (f"[batching] {record['requests']} requests x {record['jobs']} workers "
            f"(cache+coalescing off): "
            f"off {record['batching_off']['batch_tokens']} tokens vs "
            f"on {record['batching_on']['batch_tokens']} tokens "
            f"({saved} saved by batched execution) -> "
            f"{record['token_reduction']:.2f}x fewer tokens, "
            f"{record['throughput_gain']:.2f}x throughput, "
            f"row-identical={record['row_identical']}")


def load_existing() -> Dict:
    """The committed record, or an empty shell (workloads update their key)."""
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
            if isinstance(existing, dict) and "gateway" in existing:
                return existing
        except ValueError:
            pass
    return {}


def test_gateway_halves_tokens_and_improves_throughput():
    """Gateway on must clear the gate's full-size floors (>= 2x tokens)."""
    record = run_benchmark()
    merged = load_existing()
    merged["gateway"] = record
    save(merged)
    print("\n" + report(record))
    failures = [f for f in gate.evaluate("gateway", merged, shape="full")
                if "gateway." in f]
    assert not failures, "\n".join(failures)


def test_batching_cuts_tokens_sublinearly():
    """True batched execution must clear the gate's floors (>= 1.5x tokens)."""
    record = run_batching_benchmark()
    merged = load_existing()
    merged["batching"] = record
    save(merged)
    print("\n" + report_batching(record))
    failures = [f for f in gate.evaluate("gateway", merged, shape="full")
                if "batching." in f]
    assert not failures, "\n".join(failures)
    saved = record["batching_on"]["gateway_stats"]["batch_token_savings"]
    assert saved > 0, "the batched arm must record batch_token_savings"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=20, help="corpus size")
    parser.add_argument("--requests", type=int, default=8, help="batch size")
    parser.add_argument("--jobs", type=int, default=4, help="worker threads")
    parser.add_argument("--scale", type=float, default=LATENCY_SCALE,
                        help="simulated model latency scale")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and batch (CI smoke run)")
    args = parser.parse_args()
    if args.quick:
        # 4 requests over 2 workers: the off arm needs two latency waves,
        # the on arm one execution plus hits — a structural throughput gap
        # (4 requests over 4 workers is one wave either way, leaving the
        # exit-code gate to scheduler noise).
        args.size, args.requests, args.jobs = 12, 4, 2
    record = run_benchmark(corpus_size=args.size, requests=args.requests,
                           jobs=args.jobs, latency_scale=args.scale)
    print(report(record))

    # The batching workload: smaller in smoke runs, with a looser floor
    # (the gate's quick shape) — the full 8x8 workload must clear 1.5x.
    if args.quick:
        batching = run_batching_benchmark(corpus_size=12, requests=4, jobs=4,
                                          latency_scale=args.scale)
    else:
        batching = run_batching_benchmark(latency_scale=args.scale)
    print(report_batching(batching))

    merged = {"gateway": record, "batching": batching}
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workloads, which a quick run must not overwrite.
        save(merged)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("gateway", merged,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

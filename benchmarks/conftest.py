"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (T1, T2, F1-F6)
or one ablation (A1-A6); see DESIGN.md section 4 for the experiment index and
EXPERIMENTS.md for the recorded results.  Fixtures are session-scoped where
the artifact is read-only.
"""

from __future__ import annotations

import pytest

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.models.base import ModelSuite

CORPUS_SIZE = 20
CORPUS_SEED = 7


def make_flagship_user() -> ScriptedUser:
    """The scripted user of the paper's Section 6 walk-through."""
    return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])


def fresh_loaded_db(**config_overrides) -> KathDB:
    """A freshly loaded KathDB instance (own models, catalog, lineage)."""
    corpus = build_movie_corpus(size=CORPUS_SIZE, seed=CORPUS_SEED)
    db = KathDB(KathDBConfig(seed=CORPUS_SEED, **config_overrides))
    db.load_corpus(corpus)
    return db


@pytest.fixture(scope="session")
def bench_corpus():
    return build_movie_corpus(size=CORPUS_SIZE, seed=CORPUS_SEED)


@pytest.fixture(scope="session")
def bench_models():
    return ModelSuite.create(seed=CORPUS_SEED)


@pytest.fixture(scope="session")
def bench_db(bench_corpus):
    """A shared loaded instance for read-mostly benchmarks."""
    db = KathDB(KathDBConfig(seed=CORPUS_SEED))
    db.load_corpus(bench_corpus)
    return db


@pytest.fixture(scope="session")
def bench_flagship_result(bench_db):
    """The flagship query executed once on the shared instance."""
    return bench_db.query(FLAGSHIP_QUERY, user=make_flagship_user())


@pytest.fixture(scope="session")
def flagship_query() -> str:
    return FLAGSHIP_QUERY

"""Ablation A1 (paper Section 3 research question): lineage-tracking overhead.

The paper asks how KathDB should track provenance "without sacrificing much
query execution speed".  This benchmark executes the flagship query under the
three tracking levels (row, table, off) and compares execution wall-clock,
lineage entries recorded, and what each level can still explain.

Expected shape: row-level tracking records by far the most entries and costs
measurably more than table-level or no tracking, but the overhead stays small
relative to the model-call-dominated execution time; only row-level tracking
can answer per-tuple explanation questions.
"""

import pytest

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY
from repro.errors import ExplanationError

LEVELS = ["row", "table", "off"]


@pytest.mark.parametrize("level", LEVELS)
def test_a1_lineage_overhead(benchmark, level):
    db = fresh_loaded_db(lineage_level=level)

    def run_query():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)

    # The answer itself does not depend on the lineage level.
    assert result.titles()[:2] == ["Guilty by Suspicion", "Clean and Sober"]

    summary = db.lineage.summary()
    if level == "row":
        assert summary["row"] > 0 and summary["table"] > 0
        # Per-tuple explanation is available.
        explanation = db.explain_tuple(result, result.rows()[0]["lid"])
        assert explanation.field_derivations
        explainable = True
    elif level == "table":
        assert summary["row"] == 0 and summary["table"] > 0
        explainable = False
    else:
        assert summary["total"] == 0
        explainable = False
        with pytest.raises((ExplanationError, KeyError, TypeError)):
            db.explain_tuple(result, result.rows()[0].get("lid") or -1)

    benchmark.extra_info["lineage_level"] = level
    benchmark.extra_info["lineage_entries"] = summary["total"]
    benchmark.extra_info["execution_runtime_s"] = result.total_runtime_s
    benchmark.extra_info["per_tuple_explanations"] = explainable

    print(f"\n[A1] lineage level={level:<6} entries={summary['total']:>6} "
          f"execution={result.total_runtime_s * 1000:7.1f} ms "
          f"per-tuple explanations={'yes' if explainable else 'no'}")

"""Ablation A6 (paper Section 2.2): sequential vs. parallel function generation.

The paper notes the optimizer "can generate these functions efficiently, in
parallel", although "our current prototype implements functions sequentially".
This benchmark compiles the flagship logical plan with both strategies and
compares optimizer wall-clock, checking that the chosen implementations are
identical.

Expected shape: both modes choose the same physical plan.  With the simulated
models each candidate costs microseconds to generate and profile, so thread
overhead makes the parallel mode *slower* here; the mode matters when each
candidate involves real LLM calls (seconds each), where independent branches
(the text-side scoring chain and the image-side classification chain) overlap.
The benchmark therefore records wall-clock for both modes and asserts only on
plan equivalence.
"""

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel
from repro.optimizer.optimizer import QueryOptimizer

import pytest


@pytest.fixture(scope="module")
def compile_environment():
    db = fresh_loaded_db()
    channel = InteractionChannel(make_flagship_user())
    _, logical_plan, _ = db.parse_and_plan(FLAGSHIP_QUERY, channel)
    return db, logical_plan


@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_a6_codegen_mode(benchmark, compile_environment, mode):
    db, logical_plan = compile_environment

    def compile_plan():
        optimizer = QueryOptimizer(db.models, db.catalog, FunctionRegistry(),
                                   parallel=(mode == "parallel"), explore_variants=True,
                                   max_variants=2)
        return optimizer.optimize(logical_plan)

    physical, report = benchmark.pedantic(compile_plan, rounds=3, iterations=1)

    assert len(physical) == len(logical_plan)
    assert report.chosen_variants["gen_excitement_score"] == "embedding_similarity"
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["optimizer_wall_clock_s"] = round(report.wall_clock_s, 4)
    benchmark.extra_info["candidates_evaluated"] = report.candidates_evaluated
    print(f"\n[A6] codegen={mode:<10} wall_clock={report.wall_clock_s * 1000:7.1f} ms "
          f"candidates={report.candidates_evaluated} "
          f"variants={ {k: v for k, v in sorted(report.chosen_variants.items())[:3]} }")


def test_a6_same_choices_in_both_modes(benchmark, compile_environment):
    db, logical_plan = compile_environment

    def compile_both():
        sequential_pair = QueryOptimizer(db.models, db.catalog, FunctionRegistry(),
                                         parallel=False).optimize(logical_plan)
        parallel_pair = QueryOptimizer(db.models, db.catalog, FunctionRegistry(),
                                       parallel=True).optimize(logical_plan)
        return sequential_pair, parallel_pair

    (sequential, seq_report), (parallel, par_report) = benchmark.pedantic(
        compile_both, rounds=1, iterations=1)
    assert seq_report.chosen_variants == par_report.chosen_variants
    assert [op.name for op in sequential] == [op.name for op in parallel]
    print(f"\n[A6] identical physical plans; sequential={seq_report.wall_clock_s * 1000:.1f} ms, "
          f"parallel={par_report.wall_clock_s * 1000:.1f} ms")

"""The shared benchmark gate: one source of truth for CI pass/fail floors.

Every performance benchmark in this directory commits a ``BENCH_*.json``
record of its full-size workload.  Until this module existed, each
benchmark's ``main()`` (and its CI step) hand-rolled its own inline
threshold checks — four slightly different copies of "fail if the ratio
regressed".  They now live here, as data:

* :data:`GATES` maps each benchmark to the dotted-path floors its
  **committed record** must hold (the full-size workload's contract) and
  the floors a **quick re-run** must hold (the smaller CI smoke shape,
  with correspondingly looser ratios).
* ``python benchmarks/gate.py --quick`` — the single CI entry point —
  validates every committed record against its full floors *and* re-runs
  every benchmark's quick shape, failing the build on any violated floor.
* The benchmarks' own ``main()``/pytest entry points delegate their
  pass/fail decision to :func:`evaluate`, so a floor changed here changes
  everywhere at once and a fifth benchmark lands by adding one
  :class:`GateSpec`.

Run it standalone::

    PYTHONPATH=src python benchmarks/gate.py --quick        # CI mode
    PYTHONPATH=src python benchmarks/gate.py                # records only
    PYTHONPATH=src python benchmarks/gate.py --only semantic --quick
"""

from __future__ import annotations

import argparse
import importlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

BENCH_DIR = Path(__file__).parent


def _bench(module: str):
    """Import a sibling benchmark module under either layout.

    ``python benchmarks/gate.py`` puts this directory on ``sys.path`` (plain
    module names); pytest imports us as the ``benchmarks`` package.
    """
    package = __package__ or ""
    if package:
        return importlib.import_module(f"{package}.{module}")
    return importlib.import_module(module)


@dataclass
class Check:
    """One floor: the value at ``path`` must respect the bound(s).

    ``path`` is a dotted path into the record (``gateway.token_reduction``).
    ``minimum`` is inclusive unless ``strict`` (then the value must exceed
    it); ``equals`` pins an exact expected value (booleans, zero counts).
    """

    path: str
    minimum: Optional[float] = None
    strict: bool = False
    equals: Any = None

    def describe(self) -> str:
        if self.equals is not None:
            return f"{self.path} == {self.equals!r}"
        op = ">" if self.strict else ">="
        return f"{self.path} {op} {self.minimum}"

    def violation(self, record: Dict[str, Any]) -> Optional[str]:
        """None when satisfied, else a human-readable failure line."""
        value: Any = record
        for part in self.path.split("."):
            if not isinstance(value, dict) or part not in value:
                return f"{self.path}: missing from record"
            value = value[part]
        if self.equals is not None:
            if value != self.equals:
                return f"{self.path}: expected {self.equals!r}, got {value!r}"
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"{self.path}: expected a number, got {value!r}"
        if self.strict:
            if value <= self.minimum:
                return f"{self.path}: {value} must exceed {self.minimum}"
        elif value < self.minimum:
            return f"{self.path}: {value} regressed below floor {self.minimum}"
        return None


@dataclass
class GateSpec:
    """One benchmark's contract with CI."""

    name: str
    record_file: str
    #: Floors the committed full-size record must hold.
    committed: List[Check]
    #: Floors a quick (CI smoke shape) re-run must hold.
    quick: List[Check]
    #: Re-runs the quick shape and returns its record (imports lazily so
    #: reading floors never pays for a benchmark import).
    quick_run: Optional[Callable[[], Dict[str, Any]]] = field(repr=False,
                                                              default=None)

    @property
    def record_path(self) -> Path:
        return BENCH_DIR / self.record_file


def _quick_concurrency() -> Dict[str, Any]:
    bench = _bench("bench_concurrent_sessions")
    return bench.run_benchmark(corpus_size=12, requests=4, jobs=4)


def _quick_gateway() -> Dict[str, Any]:
    bench = _bench("bench_gateway")
    # 4 requests over 2 workers: the off arm needs two latency waves, the
    # on arm one execution plus hits — a structural throughput gap (one
    # wave either way would leave the gate to scheduler noise).
    return {
        "gateway": bench.run_benchmark(corpus_size=12, requests=4, jobs=2),
        "batching": bench.run_batching_benchmark(corpus_size=12, requests=4,
                                                 jobs=4),
    }


def _quick_vectorized() -> Dict[str, Any]:
    bench = _bench("bench_vectorized")
    return bench.run_benchmark(corpus_size=bench.QUICK_CORPUS)


def _quick_semantic() -> Dict[str, Any]:
    bench = _bench("bench_semantic")
    return bench.run_benchmark(corpus_size=bench.QUICK_CORPUS)


def _quick_fao_store() -> Dict[str, Any]:
    bench = _bench("bench_fao_store")
    return bench.run_benchmark(corpus_size=bench.QUICK_CORPUS)


def _quick_columnar() -> Dict[str, Any]:
    bench = _bench("bench_columnar")
    return bench.run_benchmark(n_rows=bench.QUICK_ROWS)


def _quick_observability() -> Dict[str, Any]:
    bench = _bench("bench_observability")
    # Sub-10ms reps make the 5% full-size bar scheduler-noise-bound; the
    # quick shape keeps the structural checks (tokens, rows, chrome export)
    # strict and loosens only the wall budget.
    return bench.run_benchmark(corpus_size=8, requests=8, reps=3, jobs=2,
                               wall_budget_pct=30.0)


def _quick_scheduler() -> Dict[str, Any]:
    bench = _bench("bench_scheduler")
    # 12 requests over 2 workers (8 hog / 4 light): six FIFO waves in the
    # flat arm, so the hog's backlog is still what the light tenants would
    # wait behind — the structural gap survives the smaller shape.
    return bench.run_benchmark(corpus_size=12, requests=12, workers=2,
                               light_tenants=bench.LIGHT_TENANTS[:2])


def _quick_sharded() -> Dict[str, Any]:
    bench = _bench("bench_sharded")
    return bench.run_benchmark(corpus_size=bench.QUICK_CORPUS,
                               shard_counts=bench.QUICK_SHARDS)


GATES: Dict[str, GateSpec] = {
    "concurrency": GateSpec(
        name="concurrency",
        record_file="BENCH_concurrency.json",
        committed=[
            Check("speedup", minimum=2.0),
            Check("row_identical", equals=True),
        ],
        quick=[
            Check("speedup", minimum=2.0),
            Check("row_identical", equals=True),
        ],
        quick_run=_quick_concurrency,
    ),
    "gateway": GateSpec(
        name="gateway",
        record_file="BENCH_gateway.json",
        committed=[
            Check("gateway.token_reduction", minimum=2.0),
            Check("gateway.throughput_gain", minimum=1.0, strict=True),
            Check("gateway.row_identical", equals=True),
            Check("batching.token_reduction", minimum=1.5),
            Check("batching.row_identical", equals=True),
        ],
        quick=[
            Check("gateway.token_reduction", minimum=2.0),
            Check("gateway.throughput_gain", minimum=1.0, strict=True),
            Check("gateway.row_identical", equals=True),
            Check("batching.token_reduction", minimum=1.2),
            Check("batching.row_identical", equals=True),
        ],
        quick_run=_quick_gateway,
    ),
    "vectorized": GateSpec(
        name="vectorized",
        record_file="BENCH_vectorized.json",
        committed=[
            Check("token_reduction", minimum=2.0),
            Check("row_identical", equals=True),
            Check("vectorized.gateway_stats.batches", minimum=0, strict=True),
        ],
        quick=[
            Check("token_reduction", minimum=1.5),
            Check("row_identical", equals=True),
            Check("vectorized.gateway_stats.batches", minimum=0, strict=True),
        ],
        quick_run=_quick_vectorized,
    ),
    "semantic": GateSpec(
        name="semantic",
        record_file="BENCH_semantic.json",
        committed=[
            # The default-on contract: at the shipped threshold the tier
            # must serve real near-hits with *zero* observed false accepts
            # against exact execution, leave every result row untouched,
            # and the ANN index must beat the linear scan >= 5x at the full
            # workload's cache size.
            Check("accuracy.false_accepts_at_default", equals=0),
            Check("arms.ann.semantic.near_hits", minimum=0, strict=True),
            Check("row_identical", equals=True),
            Check("lookup.ann_speedup", minimum=5.0),
            Check("token_savings.ann", minimum=1.5),
        ],
        quick=[
            Check("accuracy.false_accepts_at_default", equals=0),
            Check("arms.ann.semantic.near_hits", minimum=0, strict=True),
            Check("row_identical", equals=True),
            # The quick corpus stores far fewer signatures, so the linear
            # scan it beats is shorter — the structural gap stays, the
            # ratio shrinks.
            Check("lookup.ann_speedup", minimum=2.0),
            Check("token_savings.ann", minimum=1.5),
        ],
        quick_run=_quick_semantic,
    ),
    "fao_store": GateSpec(
        name="fao_store",
        record_file="BENCH_fao_store.json",
        committed=[
            # The acceptance bar: a warm-restart prepare spends <= 10% of the
            # cold run's codegen+profiling tokens (>= 10x reduction) with
            # row-identical output, every operator is stored cold and
            # exact-hit warm (and across corpora with the same shape), and a
            # poisoned store is demoted + regenerated without failing.
            Check("warm_token_reduction", minimum=10.0),
            Check("row_identical", equals=True),
            Check("cold.skills.stores", minimum=0, strict=True),
            Check("warm.skills.exact_hits", minimum=0, strict=True),
            Check("warm.skills.misses", equals=0),
            Check("cross_corpus.skills.exact_hits", minimum=0, strict=True),
            Check("poisoned.row_identical", equals=True),
            Check("poisoned.skills.demotions", minimum=0, strict=True),
            Check("poisoned.skills.stores", minimum=0, strict=True),
        ],
        quick=[
            # The reduction is corpus-size independent (codegen is priced per
            # operator, revalidation per sample row), so the quick shape
            # holds the same floors.
            Check("warm_token_reduction", minimum=10.0),
            Check("row_identical", equals=True),
            Check("cold.skills.stores", minimum=0, strict=True),
            Check("warm.skills.exact_hits", minimum=0, strict=True),
            Check("warm.skills.misses", equals=0),
            Check("cross_corpus.skills.exact_hits", minimum=0, strict=True),
            Check("poisoned.row_identical", equals=True),
            Check("poisoned.skills.demotions", minimum=0, strict=True),
            Check("poisoned.skills.stores", minimum=0, strict=True),
        ],
        quick_run=_quick_fao_store,
    ),
    "columnar": GateSpec(
        name="columnar",
        record_file="BENCH_columnar.json",
        committed=[
            # The acceptance bar: column-at-a-time pure-relational operators
            # >= 1.5x over the transcribed row-dict legacy arm at full size,
            # bit-identical rows, and O(columns) forks whose untouched
            # vectors stay physically shared (first write unshares exactly
            # the touched column).
            Check("operator_speedup", minimum=1.5),
            Check("row_identical", equals=True),
            Check("fork.speedup", minimum=50.0),
            Check("fork.all_columns_shared", equals=True),
            Check("fork.touched_column_unshared", equals=True),
            Check("fork.untouched_columns_still_shared", equals=True),
        ],
        quick=[
            # The smaller corpus shrinks the absolute gap but the structural
            # checks stay strict; only the ratios loosen.
            Check("operator_speedup", minimum=1.2),
            Check("row_identical", equals=True),
            Check("fork.speedup", minimum=20.0),
            Check("fork.all_columns_shared", equals=True),
            Check("fork.touched_column_unshared", equals=True),
            Check("fork.untouched_columns_still_shared", equals=True),
        ],
        quick_run=_quick_columnar,
    ),
    "observability": GateSpec(
        name="observability",
        record_file="BENCH_observability.json",
        committed=[
            # The acceptance bar: tracing on costs <= 5% wall and <= 1%
            # tokens (spans never call models, so the observed token
            # overhead is exactly 0), leaves every result row untouched,
            # and the exported Chrome trace has at least one slice.
            Check("within_wall_budget", equals=True),
            Check("within_token_budget", equals=True),
            Check("row_identical", equals=True),
            Check("chrome_trace.events", minimum=0, strict=True),
            Check("chrome_trace.valid_json", equals=True),
            Check("tracing_on.spans_recorded", minimum=0, strict=True),
        ],
        quick=[
            # Same structural floors; the quick record itself was produced
            # with a looser wall budget (see _quick_observability).
            Check("within_wall_budget", equals=True),
            Check("within_token_budget", equals=True),
            Check("row_identical", equals=True),
            Check("chrome_trace.events", minimum=0, strict=True),
            Check("chrome_trace.valid_json", equals=True),
            Check("tracing_on.spans_recorded", minimum=0, strict=True),
        ],
        quick_run=_quick_observability,
    ),
    "scheduler": GateSpec(
        name="scheduler",
        record_file="BENCH_scheduler.json",
        committed=[
            # The acceptance bar: with one hog tenant flooding 4 workers at
            # 32 concurrent sessions, the light tenants' p95 end-to-end
            # latency under the scheduler is at most half the flat pool's
            # (fairness_gain >= 2), total throughput keeps the 3.6x floor
            # the flat pool held in BENCH_concurrency.json, nothing is shed
            # (the default queue bounds fit the workload), and every arm
            # returns identical rows.
            Check("fairness_gain", minimum=2.0),
            Check("speedup", minimum=3.6),
            Check("row_identical", equals=True),
            Check("scheduler.shed", equals=0),
            Check("scheduler.expired", equals=0),
        ],
        quick=[
            # 2 workers / 12 requests: fewer FIFO waves for the light
            # tenants to jump, so the fairness ratio shrinks with the
            # shape; throughput tops out near the 2-worker ideal.
            Check("fairness_gain", minimum=1.3),
            Check("speedup", minimum=1.6),
            Check("row_identical", equals=True),
            Check("scheduler.shed", equals=0),
            Check("scheduler.expired", equals=0),
        ],
        quick_run=_quick_scheduler,
    ),
    "sharded": GateSpec(
        name="sharded",
        record_file="BENCH_sharded.json",
        committed=[
            # The acceptance bar: population scattered over 4 shared-nothing
            # shards >= 1.7x over the same sharding layer at 1 shard, merged
            # scans row-identical (every column but the per-process lineage
            # lid) to an unsharded service, and a file-backed gateway cache
            # serving exact hits — with a real token cut — across a full
            # service restart.
            Check("population.speedup_4", minimum=1.7),
            Check("population.speedup_2", minimum=1.2),
            Check("row_identical", equals=True),
            Check("restart.warm_exact_hits", minimum=0, strict=True),
            Check("restart.restored_entries", minimum=0, strict=True),
            Check("restart.token_ratio", minimum=1.2),
        ],
        quick=[
            # The quick shape runs 1/2 shards on a smaller corpus: fewer
            # batched model waits to overlap, so only the 2-shard ratio is
            # held (looser); the structural floors stay strict.
            Check("population.speedup_2", minimum=1.2),
            Check("row_identical", equals=True),
            Check("restart.warm_exact_hits", minimum=0, strict=True),
            Check("restart.restored_entries", minimum=0, strict=True),
            Check("restart.token_ratio", minimum=1.2),
        ],
        quick_run=_quick_sharded,
    ),
}


def evaluate(name: str, record: Dict[str, Any],
             shape: str = "full") -> List[str]:
    """Every violated floor for one benchmark record (empty = pass).

    ``shape`` selects the floor set: ``"full"`` for full-size workloads
    (what the committed records hold), ``"quick"`` for CI smoke shapes.
    """
    spec = GATES[name]
    checks = spec.quick if shape == "quick" else spec.committed
    failures = []
    for check in checks:
        violation = check.violation(record)
        if violation is not None:
            failures.append(f"[{name}/{shape}] {violation}")
    return failures


def check_committed(name: str) -> List[str]:
    """Validate one committed record against its full-size floors."""
    spec = GATES[name]
    if not spec.record_path.exists():
        return [f"[{name}] committed record missing: {spec.record_file}"]
    try:
        record = json.loads(spec.record_path.read_text(encoding="utf-8"))
    except ValueError as error:
        return [f"[{name}] unreadable record {spec.record_file}: {error}"]
    return evaluate(name, record, shape="full")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="additionally re-run every benchmark's quick "
                             "shape and gate it (the CI mode)")
    parser.add_argument("--only", action="append", default=[],
                        metavar="NAME", choices=sorted(GATES),
                        help="gate only the named benchmark(s); repeatable")
    args = parser.parse_args(argv)
    names = args.only or list(GATES)

    failures: List[str] = []
    for name in names:
        spec = GATES[name]
        committed_failures = check_committed(name)
        failures.extend(committed_failures)
        state = "FAIL" if committed_failures else "ok"
        print(f"[gate] {name}: committed {spec.record_file} {state}")
        if args.quick:
            record = spec.quick_run()
            quick_failures = evaluate(name, record, shape="quick")
            failures.extend(quick_failures)
            state = "FAIL" if quick_failures else "ok"
            print(f"[gate] {name}: quick re-run {state}")

    if failures:
        print("\n".join(["", "benchmark gate failures:"] + failures))
        return 1
    print(f"[gate] all {len(names)} benchmark gate(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment T1 (paper Table 1): scene-graph view population from poster images.

Regenerates the relational representation of image content -- Objects,
Relationships, Attributes, Frames -- for the whole corpus and reports the
per-view row counts plus the populated schema, i.e. the artifact Table 1
defines.  The benchmark measures the cost of one full view-population pass
through the simulated VLM.
"""

from repro.datamodel.lineage import LineageStore
from repro.datamodel.scene_graph import populate_scene_graph


def test_table1_scene_graph_population(benchmark, bench_corpus, bench_models):
    posters = bench_corpus.to_tables()["poster_images"]

    def populate():
        lineage = LineageStore()
        parent = lineage.record_source("file://data/mmqa/poster_images.json")
        return populate_scene_graph(posters.rows, bench_models.vlm,
                                    lineage=lineage, parent_lid=parent)

    scene = benchmark(populate)

    # Table 1 schema shape.
    assert scene.objects.column_names() == [
        "vid", "fid", "oid", "lid", "cid", "x_1", "y_1", "x_2", "y_2"]
    assert scene.relationships.column_names() == [
        "vid", "fid", "rid", "lid", "oid_i", "pid", "oid_j"]
    assert scene.attributes.column_names() == ["vid", "fid", "oid", "lid", "k", "v"]
    assert [c for c in scene.frames.column_names()[:3]] == ["vid", "fid", "lid"]

    # One frame per poster; objects within a small factor of the ground truth
    # (the VLM misses ~5% of objects by design).
    ground_truth_objects = sum(len(m.poster.objects) for m in bench_corpus)
    assert len(scene.frames) == len(bench_corpus)
    assert 0.8 * ground_truth_objects <= len(scene.objects) <= ground_truth_objects

    benchmark.extra_info["objects_rows"] = len(scene.objects)
    benchmark.extra_info["relationships_rows"] = len(scene.relationships)
    benchmark.extra_info["attributes_rows"] = len(scene.attributes)
    benchmark.extra_info["frames_rows"] = len(scene.frames)

    print("\n[T1] scene-graph views populated from", len(bench_corpus), "posters")
    for name, table in scene.as_dict().items():
        print(f"  {name:<24} {len(table):>5} rows")


def test_table1_single_image_extraction(benchmark, bench_corpus, bench_models):
    """Per-image scene-graph extraction latency (the unit the paper's VLM pays)."""
    poster = bench_corpus.by_title("Guilty by Suspicion").poster
    graph = benchmark(bench_models.vlm.extract_scene_graph, poster)
    assert graph["objects"] is not None
    assert 0.0 <= graph["saturation"] <= 1.0

"""Ablation A2 (paper Section 4): FAO granularity -- many small functions vs one fused function.

The paper discusses the trade-off between a compact plan with fewer, larger
functions (faster, fewer intermediate materializations, but harder to generate
correctly and to explain) and a fine-grained plan (more functions, more
intermediate results, better explanations).  This benchmark runs the flagship
query with and without operator fusion and compares operator count, estimated
plan accuracy, intermediate tables materialized, and explanation depth.

Expected shape: fusion reduces the operator and intermediate count, drops the
plan's estimated accuracy (the fused implementation carries a lower prior),
and removes the per-score intermediate views that fine-grained explanations
rely on, while the final top-2 answer stays the same on this corpus.
"""

import pytest

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY

CONFIGURATIONS = {
    "fine_grained": {"enable_fusion": False},
    "fused": {"enable_fusion": True},
}


@pytest.mark.parametrize("label", list(CONFIGURATIONS))
def test_a2_fao_granularity(benchmark, label):
    db = fresh_loaded_db(explore_variants=False, **CONFIGURATIONS[label])

    def run_query():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)

    operators = len(result.physical_plan)
    intermediates = len(result.intermediates)
    estimated_accuracy = result.physical_plan.estimated_accuracy
    top2 = result.titles()[:2]
    assert top2 == ["Guilty by Suspicion", "Clean and Sober"]

    if label == "fused":
        assert any(op.name.startswith("fused_") for op in result.physical_plan)
        assert operators < 10
    else:
        assert operators == 10

    # Explanation depth: how many per-field derivations the top tuple gets.
    explanation = db.explain_tuple(result, result.rows()[0]["lid"])
    derivations = len(explanation.field_derivations)

    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["operators"] = operators
    benchmark.extra_info["intermediate_tables"] = intermediates
    benchmark.extra_info["estimated_accuracy"] = round(estimated_accuracy, 4)
    benchmark.extra_info["field_derivations"] = derivations
    benchmark.extra_info["query_tokens"] = result.total_tokens

    print(f"\n[A2] {label:<13} operators={operators:>2} intermediates={intermediates:>2} "
          f"estimated_accuracy={estimated_accuracy:.3f} "
          f"field_derivations={derivations} tokens={result.total_tokens}")


def test_a2_fused_plan_estimated_accuracy_is_lower(benchmark):
    """Direct comparison of the two plans' accuracy estimates (no execution)."""
    db = fresh_loaded_db(explore_variants=False)

    from repro.interaction.channel import InteractionChannel

    def build_plans():
        channel = InteractionChannel(make_flagship_user())
        _, logical_plan, _ = db.parse_and_plan(FLAGSHIP_QUERY, channel)
        fine_physical, _ = db.optimizer.optimize(logical_plan)
        db.optimizer.enable_fusion = True
        fused_physical, _ = db.optimizer.optimize(logical_plan)
        db.optimizer.enable_fusion = False
        return fine_physical, fused_physical

    fine_physical, fused_physical = benchmark.pedantic(build_plans, rounds=1, iterations=1)
    assert fused_physical.estimated_accuracy < fine_physical.estimated_accuracy
    assert len(fused_physical) < len(fine_physical)
    print(f"\n[A2] estimated accuracy: fine={fine_physical.estimated_accuracy:.3f} "
          f"({len(fine_physical)} ops)  fused={fused_physical.estimated_accuracy:.3f} "
          f"({len(fused_physical)} ops)")

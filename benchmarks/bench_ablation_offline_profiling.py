"""Ablation A7 (paper Section 4 research question): online vs. offline profiling.

The paper notes that KathDB "must profile function implementations on-the-fly
during query execution, which can slow down the query" and asks how to reduce
that effort, "e.g., through offline profiling".  This benchmark optimizes the
flagship logical plan twice: once with cold profiling (every candidate is
executed on sample rows) and once re-using the profile cache filled by the
first run, and compares optimizer wall-clock, tokens, and the number of
candidates profiled online.

Expected shape: the cached run profiles zero candidates online, cuts optimizer
wall-clock by a large factor, and still picks exactly the same physical plan.
"""

import pytest

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel
from repro.optimizer.optimizer import QueryOptimizer
from repro.optimizer.profile_cache import ProfileCache


@pytest.fixture(scope="module")
def profiling_environment():
    db = fresh_loaded_db()
    channel = InteractionChannel(make_flagship_user())
    _, logical_plan, _ = db.parse_and_plan(FLAGSHIP_QUERY, channel)
    cache = ProfileCache()
    # Warm the cache once so the "offline" arm has statistics to reuse.
    warm_optimizer = QueryOptimizer(db.models, db.catalog, FunctionRegistry(),
                                    profile_cache=cache)
    warm_plan, warm_report = warm_optimizer.optimize(logical_plan)
    return db, logical_plan, cache, warm_plan, warm_report


@pytest.mark.parametrize("mode", ["online", "offline_cached"])
def test_a7_profiling_mode(benchmark, profiling_environment, mode):
    db, logical_plan, cache, warm_plan, _ = profiling_environment

    def compile_plan():
        optimizer = QueryOptimizer(
            db.models, db.catalog, FunctionRegistry(),
            profile_cache=cache if mode == "offline_cached" else None)
        return optimizer.optimize(logical_plan)

    physical, report = benchmark.pedantic(compile_plan, rounds=3, iterations=1)

    assert report.chosen_variants == {op.name: op.function.variant for op in warm_plan.operators}
    if mode == "offline_cached":
        assert report.profile_cache_hits == report.candidates_evaluated
    else:
        assert report.profile_cache_hits == 0

    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["optimizer_wall_clock_ms"] = round(report.wall_clock_s * 1000, 2)
    benchmark.extra_info["candidates_profiled_online"] = (
        report.candidates_evaluated - report.profile_cache_hits)
    benchmark.extra_info["optimizer_tokens"] = report.tokens_spent

    print(f"\n[A7] profiling={mode:<15} wall_clock={report.wall_clock_s * 1000:7.1f} ms "
          f"online_profiles={report.candidates_evaluated - report.profile_cache_hits:>2} "
          f"cache_hits={report.profile_cache_hits:>2} tokens={report.tokens_spent}")

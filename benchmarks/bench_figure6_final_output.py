"""Experiment F6 (paper Figure 6): the final ranked output of the flagship query.

The paper reports the top two results as

    lid=1621  Guilty by Suspicion  1991  final score ~0.999  boring poster: True
    lid=1622  Clean and Sober      1988  final score ~0.973  boring poster: True

Absolute scores and lid values depend on the corpus and scoring substrate, but
the *shape* must hold: both movies rank on top (in that order), both posters
are classified boring, the more exciting and more recent film wins, and every
returned row carries a traceable lid.  The benchmark measures the query
execution given an already-loaded instance.
"""

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY, ranking_accuracy


def test_figure6_final_ranked_output(benchmark, bench_corpus):
    db = fresh_loaded_db()

    def run_query():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)

    rows = result.rows()
    assert [row["title"] for row in rows[:2]] == ["Guilty by Suspicion", "Clean and Sober"]
    assert rows[0]["year"] == 1991 and rows[1]["year"] == 1988
    assert rows[0]["final_score"] > rows[1]["final_score"]
    assert all(row["boring_poster"] is True for row in rows)
    assert all(isinstance(row["lid"], int) for row in rows)
    # Ranking accuracy against the corpus ground truth.
    expected = [m.title for m in bench_corpus.ground_truth_ranking()]
    accuracy = ranking_accuracy([r["title"] for r in rows], expected, top_k=2)
    assert accuracy == 1.0

    benchmark.extra_info["result_rows"] = len(rows)
    benchmark.extra_info["top2"] = [row["title"] for row in rows[:2]]
    benchmark.extra_info["top2_accuracy"] = accuracy

    print("\n[F6] final output of the flagship query (paper Figure 6)")
    header = f"  {'lid':>6} {'Name':<24} {'Year':>5} {'Final Score':>12} {'Boring Poster':>14}"
    print(header)
    for row in rows[:5]:
        print(f"  {row['lid']:>6} {row['title']:<24} {row['year']:>5} "
              f"{row['final_score']:>12.3f} {str(row['boring_poster']):>14}")

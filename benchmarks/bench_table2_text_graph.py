"""Experiment T2 (paper Table 2): text semantic-graph population from plot documents.

Regenerates the relational representation of text content -- Entities,
Mentions, Relationships, Attributes, Texts -- for the whole corpus, checking
the schema and the entity-resolution invariants the paper describes (multiple
mentions, including pronouns and bare surnames, resolving to one entity id).
"""

from repro.datamodel.lineage import LineageStore
from repro.datamodel.text_graph import populate_text_graph


def test_table2_text_graph_population(benchmark, bench_corpus, bench_models):
    plots = bench_corpus.to_tables()["film_plot"]

    def populate():
        lineage = LineageStore()
        parent = lineage.record_source("file://data/mmqa/film_plot.json")
        return populate_text_graph(plots.rows, bench_models.ner,
                                   lineage=lineage, parent_lid=parent)

    text = benchmark(populate)

    # Table 2 schema shape.
    assert text.entities.column_names() == ["did", "eid", "lid", "cid", "canonical"]
    assert text.mentions.column_names() == [
        "did", "sid", "mid", "lid", "eid", "span_1", "span_2", "surface"]
    assert text.relationships.column_names() == [
        "did", "sid", "rid", "lid", "eid_i", "pid", "eid_j"]

    assert len(text.texts) == len(bench_corpus)
    # Entity resolution: mentions outnumber entities (coreference collapses them).
    assert len(text.mentions) > len(text.entities)
    # The flagship document resolves "David Merrill" / "Merrill" / pronouns to
    # one person entity with several mentions.
    guilty_did = bench_corpus.by_title("Guilty by Suspicion").document_id
    person_rows = [row for row in text.entities
                   if row["did"] == guilty_did and row["cid"] == "person"]
    merrill = [row for row in person_rows if row["canonical"] == "David Merrill"]
    assert merrill
    merrill_mentions = [row for row in text.mentions if row["eid"] == merrill[0]["eid"]]
    assert len(merrill_mentions) >= 3

    benchmark.extra_info["entities_rows"] = len(text.entities)
    benchmark.extra_info["mentions_rows"] = len(text.mentions)
    benchmark.extra_info["relationships_rows"] = len(text.relationships)
    benchmark.extra_info["documents"] = len(text.texts)

    print("\n[T2] text semantic-graph views populated from", len(bench_corpus), "documents")
    for name, table in text.as_dict().items():
        print(f"  {name:<24} {len(table):>5} rows")


def test_table2_single_document_extraction(benchmark, bench_corpus, bench_models):
    """Per-document extraction latency (the unit the paper's NER pays)."""
    plot = bench_corpus.by_title("Guilty by Suspicion").plot
    result = benchmark(bench_models.ner.extract, plot)
    assert result.entities_of_class("person")
    assert result.event_terms()

"""Semantic near-match tier benchmark: measured accuracy + ANN lookup speed.

The gateway's semantic tier reuses answered embeddings-predicate requests
whose term *signature* is within a cosine threshold of a stored one.  It is
approximate by contract, so turning it on by default required making its
accuracy measurable.  This benchmark does that along three axes, all
recorded to ``BENCH_semantic.json`` and gated by ``benchmarks/gate.py``:

* **End-to-end arms** — the corpus-population + embeddings-scoring workload
  (corpus load, the excitement-ranking query, then a scoring-shaped request
  stream with re-issued case/order variants and novel requests) runs with
  the tier ``off`` / ``linear`` / ``ann``.  Result rows and every streamed
  predicate score must be identical across arms (the end-to-end zero-false-
  accept observable), near-hit counts give the tier's hit rate, and the
  token meters give its savings.

* **Accuracy audit** — the same request stream replayed against standalone
  caches across a threshold sweep, comparing every served answer with exact
  execution.  This is where the shipped default threshold comes from: at
  0.97 (the tier's original default) the workload shows real false accepts;
  the committed record proves the shipped default produces **zero**.

* **Lookup latency** — mean per-lookup time, linear scan vs multi-probe LSH,
  at the full workload's cache size.  The committed record must show the
  ANN index >= 5x faster.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_semantic.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_semantic.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro import KathDBConfig, KathDBService, QueryRequest, ScriptedUser
from repro.data.mmqa import build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION
from repro.gateway.semantic import SemanticNearCache, term_signature
from repro.models.embeddings import EmbeddingModel
from repro.models.lexicon import default_lexicon
from repro.utils.text import content_words

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_semantic.json"

SCORING_QUERY = "Rank every film by how exciting its plot is."
FULL_CORPUS = 48
QUICK_CORPUS = 16

#: The shipped default — what :class:`repro.core.config.KathDBConfig` uses
#: and what the accuracy audit must prove produces zero false accepts.
DEFAULT_THRESHOLD = KathDBConfig().semantic_similarity_threshold

#: Sweep points: the tier's pre-graduation default (0.97) and a tighter
#: 0.995 — both of which the audit catches serving wrong answers to
#: near-boundary requests on this workload — plus the shipped default.
SWEEP_THRESHOLDS = (0.97, 0.995, DEFAULT_THRESHOLD)

#: Keyword families the generated scoring functions plausibly emit.
KEYWORD_SETS = (
    ("gun", "explosion", "chase", "fight", "battle", "war", "murder"),
    ("love", "romance", "kiss", "wedding", "heart"),
    ("ghost", "monster", "scream", "haunted", "blood"),
)

#: One logical predicate request: (query terms, candidate terms).
Request = Tuple[Tuple[str, ...], Tuple[str, ...]]


def build_requests(corpus) -> Dict[str, List[Request]]:
    """The scoring-shaped request stream, split by kind.

    * ``base`` — each movie's plot terms against each keyword family (what
      one pass of the match-density scoring body issues);
    * ``variant`` — re-issues of base requests as a different tenant would
      type them: title-cased terms (the embedder normalizes case, so the
      signature vector is identical and the exact answer provably equal)
      and reversed argument order (signature-identical by construction);
    * ``novel`` — genuinely different requests (disjoint plot slices, and
      near-boundary lists with one extra unseen term) that must fall back
      to exact execution rather than be served someone else's answer.
    """
    base: List[Request] = []
    variant: List[Request] = []
    novel: List[Request] = []
    for position, movie in enumerate(corpus.movies):
        words = content_words(movie.plot)
        terms = tuple(words[:18])
        if not terms:
            continue
        for family, keywords in enumerate(KEYWORD_SETS):
            base.append((keywords, terms))
            if (position + family) % 2 == 0:
                variant.append((tuple(t.title() for t in keywords),
                                tuple(t.title() for t in terms)))
            else:
                variant.append((tuple(reversed(keywords)),
                                tuple(reversed(terms))))
        late = tuple(words[18:36])
        if late:
            novel.append((KEYWORD_SETS[0], late))
        # Near-boundary: one unseen term appended — close in signature
        # space, but a different request whose answer may differ.
        novel.append((KEYWORD_SETS[position % len(KEYWORD_SETS)],
                      terms + (f"zzquux{position}",)))
    return {"base": base, "variant": variant, "novel": novel}


def _issue_stream(session, requests: Sequence[Request],
                  chunk: int = 16) -> List[float]:
    """Run a request stream through the session's routed embeddings proxy.

    Chunked ``match_fraction_batch`` calls — the same funnel the vectorized
    scoring body uses — so the stream exercises exact cache, semantic tier,
    and batched execution together.
    """
    scores: List[float] = []
    embeddings = session.models.embeddings
    for start in range(0, len(requests), chunk):
        window = requests[start:start + chunk]
        # Group by query terms: match_fraction_batch shares one query set.
        by_query: Dict[Tuple[str, ...], List[Tuple[int, Tuple[str, ...]]]] = {}
        for offset, (query, candidates) in enumerate(window):
            by_query.setdefault(query, []).append((offset, candidates))
        window_scores: List[float] = [0.0] * len(window)
        for query, members in by_query.items():
            answers = embeddings.match_fraction_batch(
                query, [candidates for _, candidates in members],
                purpose="bench_semantic")
            for (offset, _), answer in zip(members, answers):
                window_scores[offset] = answer
        scores.extend(window_scores)
    return scores


def run_arm(corpus, mode: str, requests: Dict[str, List[Request]]) -> Dict:
    """One end-to-end arm: population + scoring query + request stream."""
    config = KathDBConfig(
        seed=7, monitor_enabled=False, explore_variants=False,
        enable_semantic_cache=(mode != "off"),
        semantic_cache_mode=(mode if mode != "off" else "ann"))
    service = KathDBService(config)
    service.load_corpus(corpus)
    session = service.session(name=f"bench-{mode}")
    response = session.query(QueryRequest(
        nl_query=SCORING_QUERY,
        user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION})))
    assert response.ok, response.error
    rows = [dict(row) for row in response.result.final_table]

    base_marker = session.total_tokens()
    base_scores = _issue_stream(session, requests["base"])
    stream_marker = session.total_tokens()
    start = time.perf_counter()
    reuse_scores = _issue_stream(session, requests["variant"])
    reuse_scores += _issue_stream(session, requests["novel"])
    stream_s = time.perf_counter() - start
    stream_tokens = session.total_tokens() - stream_marker

    semantic_stats = service.gateway.stats()["semantic"]
    arm = {
        "mode": mode,
        "query_tokens": response.prepare_tokens + response.execute_tokens,
        "base_stream_tokens": stream_marker - base_marker,
        "stream_tokens": stream_tokens,
        "stream_s": round(stream_s, 4),
        "semantic": {
            "near_hits": semantic_stats["near_hits"],
            "fallbacks": semantic_stats["fallbacks"],
            "tokens_saved": semantic_stats["tokens_saved"],
            "entries": semantic_stats["entries"],
            "mode": semantic_stats["mode"],
            "ann": {k: semantic_stats["ann"][k]
                    for k in ("buckets", "max_bucket", "probes", "lookups")},
        },
        "session_gateway": {
            k: v for k, v in session.gateway_stats().items()
            if k in ("hits", "misses", "semantic_hits", "tokens_saved",
                     "tokens_charged", "batch_tokens_saved")},
        "rows": rows,
        "scores": base_scores + reuse_scores,
    }
    service.shutdown()
    return arm


def run_accuracy_audit(requests: Dict[str, List[Request]]) -> Dict:
    """Replay the stream against standalone caches across the sweep.

    Every lookup that serves a stored answer is compared against the
    exactly-computed one; a mismatch is a false accept.  Misses store the
    exact answer, mirroring the gateway's put-on-miss behaviour.
    """
    model = EmbeddingModel(lexicon=default_lexicon())
    stream = requests["base"] + requests["variant"] + requests["novel"]
    sweep = []
    false_at_default = 0
    for threshold in SWEEP_THRESHOLDS:
        for mode in ("linear", "ann"):
            cache = SemanticNearCache(threshold=threshold, capacity=8192,
                                      mode=mode)
            group = ("embedding:lexicon-64", "match_fraction", "", ())
            hits = false_accepts = 0
            for query, candidates in stream:
                signature = term_signature(query, candidates)
                vector = cache.embed_signature(signature)
                entry, _ = cache.search(group, vector, signature)
                exact = model.match_fraction(list(query), list(candidates))
                if entry is not None:
                    hits += 1
                    if entry.result != exact:
                        false_accepts += 1
                else:
                    cache.put(group, vector, signature, exact)
            if threshold == DEFAULT_THRESHOLD:
                false_at_default += false_accepts
            sweep.append({
                "threshold": threshold,
                "mode": mode,
                "requests": len(stream),
                "near_hits": hits,
                "false_accepts": false_accepts,
                "hit_rate": round(hits / len(stream), 4),
                "false_accept_rate": round(false_accepts / len(stream), 4),
            })
    return {
        "methodology": "every served answer compared against exact execution",
        "default_threshold": DEFAULT_THRESHOLD,
        "false_accepts_at_default": false_at_default,
        "sweep": sweep,
    }


def run_lookup_latency(requests: Dict[str, List[Request]],
                       repeats: int = 5) -> Dict:
    """Mean per-lookup latency, linear vs ANN, at the workload's cache size."""
    seed_cache = SemanticNearCache(threshold=DEFAULT_THRESHOLD, mode="ann")
    group = ("embedding:lexicon-64", "match_fraction", "", ())
    stored = [(term_signature(q, c), None) for q, c in requests["base"]]
    stored = [(sig, seed_cache.embed_signature(sig)) for sig, _ in stored]
    probes = stored + [
        (term_signature(q, c), seed_cache.embed_signature(term_signature(q, c)))
        for q, c in requests["variant"] + requests["novel"]]

    timings = {}
    for mode in ("linear", "ann"):
        cache = SemanticNearCache(threshold=DEFAULT_THRESHOLD, capacity=8192,
                                  mode=mode)
        for signature, vector in stored:
            cache.put(group, vector, signature, 0.5)
        start = time.perf_counter()
        for _ in range(repeats):
            for signature, vector in probes:
                cache.search(group, vector, signature)
        elapsed = time.perf_counter() - start
        timings[mode] = elapsed / (repeats * len(probes))
    return {
        "entries": len(stored),
        "probe_count": len(probes),
        "linear_us": round(timings["linear"] * 1e6, 2),
        "ann_us": round(timings["ann"] * 1e6, 2),
        "ann_speedup": round(timings["linear"] / max(timings["ann"], 1e-12), 2),
    }


def run_benchmark(corpus_size: int = FULL_CORPUS) -> Dict:
    corpus = build_movie_corpus(size=corpus_size, seed=7)
    requests = build_requests(corpus)
    arms = {mode: run_arm(corpus, mode, requests)
            for mode in ("off", "linear", "ann")}

    # The end-to-end zero-false-accept observable: neither lookup structure
    # may change a single query row or streamed predicate score.
    reference_rows = arms["off"].pop("rows")
    reference_scores = arms["off"].pop("scores")
    identical = True
    for mode in ("linear", "ann"):
        identical &= arms[mode].pop("rows") == reference_rows
        identical &= arms[mode].pop("scores") == reference_scores

    reuse_requests = len(requests["variant"]) + len(requests["novel"])
    off_stream = arms["off"]["stream_tokens"]
    return {
        "workload": ("corpus population + excitement-scoring query + "
                     "scoring-shaped request stream "
                     "(re-issued variants + novel requests)"),
        "corpus_size": corpus_size,
        "query": SCORING_QUERY,
        "requests": {kind: len(items) for kind, items in requests.items()},
        "arms": arms,
        "row_identical": identical,
        "hit_rate": round(
            arms["ann"]["semantic"]["near_hits"] / max(reuse_requests, 1), 4),
        "token_savings": {
            mode: round(off_stream / max(arms[mode]["stream_tokens"], 1), 3)
            for mode in ("linear", "ann")},
        "accuracy": run_accuracy_audit(requests),
        "lookup": run_lookup_latency(requests),
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    lookup = record["lookup"]
    ann = record["arms"]["ann"]
    return (f"[semantic] corpus {record['corpus_size']}, "
            f"{sum(record['requests'].values())} predicate requests: "
            f"hit-rate {record['hit_rate']:.0%} on re-issued traffic, "
            f"{record['accuracy']['false_accepts_at_default']} false accepts "
            f"at threshold {record['accuracy']['default_threshold']}, "
            f"{record['token_savings']['ann']}x fewer stream tokens, "
            f"lookup {lookup['linear_us']}us linear vs {lookup['ann_us']}us "
            f"ann ({lookup['ann_speedup']}x) at {lookup['entries']} entries, "
            f"{ann['semantic']['ann']['buckets']} buckets "
            f"(max {ann['semantic']['ann']['max_bucket']}), "
            f"row-identical={record['row_identical']}")


def test_semantic_tier_accuracy_and_ann_speedup():
    """Full workload must clear every committed semantic floor."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("semantic", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=None, help="corpus size")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (CI smoke shape, looser floors)")
    args = parser.parse_args()
    size = args.size or (QUICK_CORPUS if args.quick else FULL_CORPUS)
    record = run_benchmark(corpus_size=size)
    print(report(record))
    shape = "quick" if args.quick else "full"
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("semantic", record, shape=shape)
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

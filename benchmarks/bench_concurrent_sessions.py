"""Concurrency benchmark: serial vs. worker-pool batch throughput.

Measures the payoff of the Session/Service redesign on the movie workload:
the same batch of flagship-style requests is served once with ``jobs=1``
(serial) and once with ``jobs=4`` (worker threads), with the prepared-query
cache warm in both arms so the comparison isolates *execution* throughput.

Simulated model calls sleep their synthetic latency
(``simulate_model_latency``), exactly like the network wait of a hosted
model, so the worker pool has something real to overlap — without it every
query is a few milliseconds of pure Python and thread workers cannot help.

Results (queries/sec, total tokens, speedup, a row-identity check between
the two arms) are written to ``BENCH_concurrency.json`` next to this file so
later PRs have a perf trajectory to beat.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_concurrent_sessions.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_concurrent_sessions.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List

from repro import (
    KathDBConfig,
    KathDBService,
    QueryRequest,
    ScriptedUser,
)
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.data.mmqa import build_movie_corpus
from repro.utils.timer import Timer

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_concurrency.json"
#: Sleep each model call's synthetic latency times this factor.  At 1x the
#: flagship execution (per-row VLM scoring) waits ~0.8 s per query — enough
#: to dominate the few ms of Python, exactly as a hosted model call would.
LATENCY_SCALE = 1.0


def make_requests(count: int) -> List[QueryRequest]:
    """``count`` flagship requests, each with its own scripted user."""
    return [QueryRequest(nl_query=FLAGSHIP_QUERY,
                         user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                           [FLAGSHIP_CORRECTION]))
            for _ in range(count)]


def run_benchmark(corpus_size: int = 20, requests: int = 8, jobs: int = 4,
                  latency_scale: float = LATENCY_SCALE) -> Dict:
    """Serve the batch serially and concurrently; return the recorded metrics."""
    # The model gateway is disabled here on purpose: this benchmark isolates
    # worker-pool *execution overlap* (every request must pay its own model
    # calls, hence the serial-vs-parallel token parity assertion below).
    # bench_gateway.py measures the gateway's cross-request dedup on top.
    # Vectorized execution is pinned off for the same reason: batching
    # collapses each request's per-row latency into one invocation, which is
    # bench_vectorized.py's effect — here every request keeps its serial
    # per-call latency so the pool's overlap is what gets measured.
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         explore_variants=False,
                                         enable_model_gateway=False,
                                         enable_vectorized_execution=False,
                                         simulate_model_latency=latency_scale))
    service.load_corpus(build_movie_corpus(size=corpus_size, seed=7))

    # Warm the prepared cache so both arms measure execution, not compilation.
    warmup = service.query_batch(make_requests(1), jobs=1)[0]
    assert warmup.ok, warmup.error

    serial_timer = Timer()
    with serial_timer:
        serial = service.query_batch(make_requests(requests), jobs=1)
    parallel_timer = Timer()
    with parallel_timer:
        parallel = service.query_batch(make_requests(requests), jobs=jobs)

    assert all(r.ok for r in serial + parallel)
    identical = all(s.result.rows() == p.result.rows()
                    for s, p in zip(serial, parallel))

    serial_qps = requests / max(serial_timer.elapsed, 1e-9)
    parallel_qps = requests / max(parallel_timer.elapsed, 1e-9)
    record = {
        "workload": "flagship query, movie corpus",
        "corpus_size": corpus_size,
        "requests": requests,
        "jobs": jobs,
        "latency_scale": latency_scale,
        "serial_s": round(serial_timer.elapsed, 4),
        "parallel_s": round(parallel_timer.elapsed, 4),
        "serial_qps": round(serial_qps, 3),
        "parallel_qps": round(parallel_qps, 3),
        "speedup": round(parallel_qps / serial_qps, 3),
        "serial_tokens": sum(r.total_tokens for r in serial),
        "parallel_tokens": sum(r.total_tokens for r in parallel),
        "prepared_cache": service.prepared_stats(),
        "row_identical": identical,
    }
    service.shutdown()
    return record


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    return (f"[concurrency] {record['requests']} requests: "
            f"serial {record['serial_s']:.2f} s ({record['serial_qps']:.2f} q/s) vs "
            f"{record['jobs']} workers {record['parallel_s']:.2f} s "
            f"({record['parallel_qps']:.2f} q/s) -> {record['speedup']:.2f}x, "
            f"row-identical={record['row_identical']}")


def test_concurrent_batch_is_faster_and_identical():
    """4-worker batches must clear the gate's floors with identical rows."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("concurrency", record, shape="full")
    assert not failures, "\n".join(failures)
    # Invariant, not a floor: with the gateway off, every request pays its
    # own model calls — the pool must not change the bill.
    assert record["parallel_tokens"] == record["serial_tokens"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=20, help="corpus size")
    parser.add_argument("--requests", type=int, default=8, help="batch size")
    parser.add_argument("--jobs", type=int, default=4, help="worker threads")
    parser.add_argument("--scale", type=float, default=LATENCY_SCALE,
                        help="simulated model latency scale")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and batch (CI smoke run)")
    args = parser.parse_args()
    if args.quick:
        args.size, args.requests = 12, 4
    record = run_benchmark(corpus_size=args.size, requests=args.requests,
                           jobs=args.jobs, latency_scale=args.scale)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("concurrency", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

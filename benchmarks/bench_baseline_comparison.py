"""Ablation A4 (paper Sections 1 and 7): KathDB vs. the two baseline paradigms.

The paper positions KathDB between "AI-assisted SQL engines that demand user
effort" and "powerful but opaque multimodal systems".  This benchmark runs the
flagship query through all three on the same corpus and models and compares
accuracy, token cost, manual effort, user turns, and explanation depth.

Expected shape: the expert SQL+UDF pipeline and KathDB both get the Figure 6
top-2 right; the black box misranks (it folds the boring-poster filter into
the score and cannot take the recency correction) and pays per-record prompt
costs; only KathDB combines NL input, competitive accuracy, and lineage-backed
explanations.
"""

from benchmarks.conftest import CORPUS_SEED, fresh_loaded_db, make_flagship_user
from repro.baselines.blackbox_llm import BlackBoxLLMBaseline
from repro.baselines.sql_udf import SQLUDFBaseline
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_QUERY,
    ranking_accuracy,
)
from repro.models.base import ModelSuite


def test_a4_kathdb_system(benchmark, bench_corpus):
    db = fresh_loaded_db()

    def run():
        return db.query(FLAGSHIP_QUERY, user=make_flagship_user())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    expected = [m.title for m in bench_corpus.ground_truth_ranking()]
    accuracy = ranking_accuracy(result.titles(), expected, top_k=2)
    assert accuracy == 1.0

    benchmark.extra_info["system"] = "kathdb"
    benchmark.extra_info["top2_accuracy"] = accuracy
    benchmark.extra_info["query_tokens"] = result.total_tokens
    benchmark.extra_info["manual_steps"] = 0
    benchmark.extra_info["user_turns"] = result.transcript.user_turns()
    benchmark.extra_info["explanation_artifacts"] = 5
    print(f"\n[A4] KathDB        accuracy={accuracy:.2f} tokens={result.total_tokens} "
          f"user_turns={result.transcript.user_turns()} explanations=5")


def test_a4_sql_udf_baseline(benchmark, bench_corpus):
    models = ModelSuite.create(seed=CORPUS_SEED)
    baseline = SQLUDFBaseline(models)

    result = benchmark.pedantic(lambda: baseline.flagship_query(bench_corpus),
                                rounds=3, iterations=1)
    expected = [m.title for m in bench_corpus.ground_truth_ranking()]
    accuracy = ranking_accuracy(result.titles(), expected, top_k=2)
    assert accuracy == 1.0
    assert result.manual_operations >= 5

    benchmark.extra_info["system"] = "sql_udf"
    benchmark.extra_info["top2_accuracy"] = accuracy
    benchmark.extra_info["query_tokens"] = result.tokens
    benchmark.extra_info["manual_steps"] = result.manual_operations
    benchmark.extra_info["user_turns"] = 0
    benchmark.extra_info["explanation_artifacts"] = 2
    print(f"\n[A4] SQL+UDF       accuracy={accuracy:.2f} tokens={result.tokens} "
          f"manual_steps={result.manual_operations} explanations=2")


def test_a4_blackbox_baseline(benchmark, bench_corpus):
    models = ModelSuite.create(seed=CORPUS_SEED)
    baseline = BlackBoxLLMBaseline(models)

    result = benchmark.pedantic(
        lambda: baseline.answer(FLAGSHIP_QUERY, bench_corpus,
                                {"exciting": FLAGSHIP_CLARIFICATION}),
        rounds=3, iterations=1)
    expected = [m.title for m in bench_corpus.ground_truth_ranking()]
    accuracy = ranking_accuracy(result.titles(), expected, top_k=2)
    # The opaque baseline is systematically worse on the compositional query.
    assert accuracy < 1.0
    assert baseline.explanation_depth() == 1

    benchmark.extra_info["system"] = "blackbox_llm"
    benchmark.extra_info["top2_accuracy"] = accuracy
    benchmark.extra_info["query_tokens"] = result.tokens
    benchmark.extra_info["manual_steps"] = 0
    benchmark.extra_info["user_turns"] = 1
    benchmark.extra_info["explanation_artifacts"] = 1
    print(f"\n[A4] black-box LLM accuracy={accuracy:.2f} tokens={result.tokens} "
          f"per_record_calls={result.per_record_calls} explanations=1")


def test_a4_shape_summary(benchmark, bench_corpus):
    """Cross-system assertions on the comparison's overall shape."""
    expected = [m.title for m in bench_corpus.ground_truth_ranking()]

    def run_all():
        db = fresh_loaded_db()
        kathdb = db.query(FLAGSHIP_QUERY, user=make_flagship_user())
        blackbox_run = BlackBoxLLMBaseline(ModelSuite.create(seed=CORPUS_SEED)).answer(
            FLAGSHIP_QUERY, bench_corpus, {"exciting": FLAGSHIP_CLARIFICATION})
        sql_run = SQLUDFBaseline(ModelSuite.create(seed=CORPUS_SEED)).flagship_query(bench_corpus)
        return kathdb, blackbox_run, sql_run

    kathdb_result, blackbox, sql_udf = benchmark.pedantic(run_all, rounds=1, iterations=1)
    kathdb_accuracy = ranking_accuracy(kathdb_result.titles(), expected, top_k=2)
    blackbox_accuracy = ranking_accuracy(blackbox.titles(), expected, top_k=2)
    sql_accuracy = ranking_accuracy(sql_udf.titles(), expected, top_k=2)

    # Who wins, by roughly what factor.
    assert kathdb_accuracy > blackbox_accuracy
    assert sql_accuracy == kathdb_accuracy
    assert blackbox.tokens > kathdb_result.total_tokens
    assert sql_udf.manual_operations > 0

    print("\n[A4] summary")
    print(f"  {'system':<16} {'top2 acc':>8} {'tokens':>9} {'manual':>7} {'explanations':>13}")
    print(f"  {'KathDB':<16} {kathdb_accuracy:>8.2f} {kathdb_result.total_tokens:>9} "
          f"{0:>7} {5:>13}")
    print(f"  {'SQL+UDF':<16} {sql_accuracy:>8.2f} {sql_udf.tokens:>9} "
          f"{sql_udf.manual_operations:>7} {2:>13}")
    print(f"  {'black-box LLM':<16} {blackbox_accuracy:>8.2f} {blackbox.tokens:>9} "
          f"{0:>7} {1:>13}")

"""Columnar-store benchmark: column-at-a-time operators vs the row-dict core.

PR 8 replaced ``Table``'s per-row-dict storage with a columnar store (one
typed vector per column, copy-on-write forks).  This benchmark measures the
two claims that refactor makes:

* **operator throughput** — the pure-relational operators (filter, project,
  sort, hash join, aggregate, distinct) over a large synthetic corpus,
  column-at-a-time vs a faithful **legacy arm** transcribed from the
  pre-columnar implementation (one dict per row, ``predicate.evaluate(row)``
  per row, per-row dict construction).  The legacy arm runs on plain lists
  of dicts with no Table bookkeeping, so the measured speedup is a *lower*
  bound on what the old engine paid.  Outputs must be row-identical.
* **overlay-fork cost** — ``Table.fork()`` (the session-overlay/copy path)
  against the old ``copy()`` body (``[dict(row) for row in rows]``).  The
  fork must leave every untouched column physically shared (verified by
  identity) and a first write must unshare only the touched column.

The record lands in ``BENCH_columnar.json``; floors live in
``benchmarks/gate.py`` (>= 1.5x operator throughput at full size).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_columnar.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar.py -q
"""

from __future__ import annotations

import argparse
import functools
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

from repro.relational import operators as ops
from repro.relational.expressions import BinaryOp, col, lit
from repro.relational.operators import AggregateSpec
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import compare_values

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_columnar.json"

FULL_ROWS = 20_000
QUICK_ROWS = 4_000
REPEATS = 3

GENRES = ["action", "drama", "comedy", "thriller", "noir", "romance", "scifi"]

FILM_SCHEMA = Schema.of(("movie_id", "int"), ("title", "text"), ("year", "int"),
                        ("score", "float"), ("votes", "int"), ("genre", "text"))
RATING_SCHEMA = Schema.of(("movie_id", "int"), ("rating", "float"))


def build_film_rows(n: int) -> List[Dict[str, Any]]:
    """Deterministic synthetic corpus (no RNG: bit-identical across arms)."""
    rows = []
    for i in range(n):
        rows.append({
            "movie_id": i,
            "title": f"movie {(i * 7919) % 997:03d}",
            "year": 1900 + (i * 37) % 130,
            "score": None if i % 17 == 0 else ((i * 13) % 100) / 100.0,
            "votes": (i * 101) % 100_000,
            "genre": GENRES[(i * 31) % len(GENRES)],
        })
    return rows


def build_rating_rows(n: int) -> List[Dict[str, Any]]:
    return [{"movie_id": (i * 3) % n, "rating": ((i * 7) % 50) / 10.0}
            for i in range(n // 4)]


# ---------------------------------------------------------------------------
# Legacy arm: the pre-columnar row-dict operator bodies, transcribed
# ---------------------------------------------------------------------------
def legacy_filter(rows, predicate):
    return [dict(row) for row in rows if predicate.evaluate(row)]


def legacy_project(rows, columns):
    return [{c: row.get(c) for c in columns} for row in rows]


def legacy_sort(rows, keys):
    def cmp(a, b):
        for column, descending in keys:
            result = compare_values(a.get(column), b.get(column))
            if result is None:
                result = compare_values(repr(a.get(column)), repr(b.get(column))) or 0
            if result != 0:
                return -result if descending else result
        return 0

    return [dict(row) for row in sorted(rows, key=functools.cmp_to_key(cmp))]


def legacy_hash_join(left_rows, right_rows, left_names, right_out_names,
                     right_in_names, key):
    index: Dict[Any, List[Dict[str, Any]]] = {}
    for row in right_rows:
        value = row.get(key)
        if value is None:
            continue
        index.setdefault(value, []).append(row)
    out = []
    for lrow in left_rows:
        value = lrow.get(key)
        for rrow in (index.get(value, []) if value is not None else []):
            row = {n: lrow.get(n) for n in left_names}
            for out_name, in_name in zip(right_out_names, right_in_names):
                row[out_name] = rrow.get(in_name)
            out.append(row)
    return out


def _hashable(value):
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def legacy_aggregate(rows, group_by, specs):
    """The old ``aggregate``: per-row tuple keys, groups of row dicts,
    ``spec.compute(rows)`` re-reading every member dict per aggregate."""
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    order = []
    for row in rows:
        key = tuple(_hashable(row.get(c)) for c in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out = []
    for key in order:
        members = groups[key]
        result = dict(zip(group_by, key))
        for spec in specs:
            result[spec.alias] = spec.compute(members)
        out.append(result)
    return out


def legacy_distinct(rows, columns):
    seen = set()
    out = []
    for row in rows:
        key = tuple(repr(row.get(c)) for c in columns)
        if key not in seen:
            seen.add(key)
            out.append(dict(row))
    return out


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
def _time(fn: Callable[[], Any], repeats: int = REPEATS) -> float:
    """Best-of-N wall time (best-of filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(n_rows: int = FULL_ROWS) -> Dict[str, Any]:
    film_rows = build_film_rows(n_rows)
    rating_rows = build_rating_rows(n_rows)
    films = Table("films", Schema(list(FILM_SCHEMA.columns)), film_rows)
    ratings = Table("ratings", Schema(list(RATING_SCHEMA.columns)), rating_rows)

    predicate = BinaryOp("and",
                         BinaryOp(">", col("year"), lit(1980)),
                         BinaryOp(">=", col("score"), lit(0.5)))
    project_columns = ["title", "year", "score"]
    sort_keys = [("year", True), ("title", False)]
    joined_schema = films.schema.merge(ratings.schema)
    right_out = joined_schema.column_names()[len(films.column_names()):]

    arms: Dict[str, Dict[str, Callable[[], Any]]] = {
        "filter": {
            "legacy": lambda: legacy_filter(film_rows, predicate),
            "columnar": lambda: ops.filter_rows(films, predicate),
        },
        "project": {
            "legacy": lambda: legacy_project(film_rows, project_columns),
            "columnar": lambda: ops.project(films, project_columns),
        },
        "sort": {
            "legacy": lambda: legacy_sort(film_rows, sort_keys),
            "columnar": lambda: ops.sort(films, sort_keys),
        },
        "hash_join": {
            "legacy": lambda: legacy_hash_join(
                film_rows, rating_rows, films.column_names(), right_out,
                ratings.column_names(), "movie_id"),
            "columnar": lambda: ops.hash_join(films, ratings,
                                              "movie_id", "movie_id"),
        },
        "aggregate": {
            "legacy": lambda: legacy_aggregate(
                film_rows, ["genre"],
                [AggregateSpec("count", None, "n"),
                 AggregateSpec("avg", "score", "avg_score")]),
            "columnar": lambda: ops.aggregate(
                films, ["genre"],
                [AggregateSpec("count", None, "n"),
                 AggregateSpec("avg", "score", "avg_score")]),
        },
        "distinct": {
            "legacy": lambda: legacy_distinct(film_rows, ["genre", "year"]),
            "columnar": lambda: ops.distinct(films, ["genre", "year"]),
        },
    }

    operators: Dict[str, Dict[str, Any]] = {}
    legacy_total = columnar_total = 0.0
    all_identical = True
    for op_name, arm in arms.items():
        expected = arm["legacy"]()
        actual = arm["columnar"]()
        identical = [dict(row) for row in actual] == expected
        all_identical = all_identical and identical
        legacy_s = _time(arm["legacy"])
        columnar_s = _time(arm["columnar"])
        legacy_total += legacy_s
        columnar_total += columnar_s
        operators[op_name] = {
            "legacy_s": round(legacy_s, 6),
            "columnar_s": round(columnar_s, 6),
            "speedup": round(legacy_s / max(columnar_s, 1e-9), 3),
            "rows_out": len(actual),
            "row_identical": identical,
        }

    # Overlay-fork cost: the session-overlay path vs the old copy() body.
    fork_s = _time(lambda: films.fork())
    legacy_copy_s = _time(lambda: [dict(row) for row in film_rows])
    fork = films.fork()
    all_shared = all(films.shares_column(fork, c) for c in films.column_names())
    fork.set_column("score", [None] * len(fork))
    touched_unshared = not films.shares_column(fork, "score")
    others_still_shared = all(films.shares_column(fork, c)
                              for c in films.column_names() if c != "score")

    return {
        "workload": ("pure-relational operators over a synthetic corpus, "
                     "columnar vs transcribed row-dict legacy arm"),
        "rows": n_rows,
        "repeats": REPEATS,
        "operators": operators,
        "operator_speedup": round(legacy_total / max(columnar_total, 1e-9), 3),
        "row_identical": all_identical,
        "fork": {
            "rows": n_rows,
            "fork_s": round(fork_s, 6),
            "legacy_copy_s": round(legacy_copy_s, 6),
            "speedup": round(legacy_copy_s / max(fork_s, 1e-9), 3),
            "all_columns_shared": all_shared,
            "touched_column_unshared": touched_unshared,
            "untouched_columns_still_shared": others_still_shared,
        },
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    per_op = ", ".join(f"{name} {entry['speedup']:.1f}x"
                       for name, entry in record["operators"].items())
    fork = record["fork"]
    return (f"[columnar] {record['rows']} rows: operators "
            f"{record['operator_speedup']:.2f}x overall ({per_op}), "
            f"fork {fork['speedup']:.0f}x vs row copy "
            f"(shared={fork['all_columns_shared']}), "
            f"row-identical={record['row_identical']}")


def test_columnar_operators_beat_row_dicts():
    """The columnar engine must clear the gate's floors (>= 1.5x operators)."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("columnar", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=None, help="corpus rows")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (CI smoke run; looser floors)")
    args = parser.parse_args()
    n_rows = args.rows or (QUICK_ROWS if args.quick else FULL_ROWS)
    record = run_benchmark(n_rows=n_rows)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("columnar", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation A5 (paper Section 5 research question): user-feedback mechanisms vs. sketch accuracy.

The paper asks how its feedback mechanisms (proactive clarification, reactive
correction) trade user effort against query-sketch accuracy, "as a query
sketch that does not match the user's intent will inevitably lead to
semantically incorrect functions ... and erroneous final query results".

This benchmark parses and executes the flagship query under four interaction
configurations and reports user turns, whether the final plan captured the two
user-specific pieces of intent (the meaning of 'exciting' and the recency
preference), and the resulting answer accuracy.

Expected shape: richer interaction captures more of the user's intent for a
handful of user turns -- only configurations with proactive clarification learn
what 'exciting' means, and only configurations with reactive correction pick up
the recency preference (11-step sketch instead of 8).  On this small corpus the
top-2 answer happens to be robust to the missing intent, so the differentiator
is intent capture rather than headline accuracy; larger or more ambiguous
workloads would translate the missing intent into wrong answers.
"""

import pytest

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY, ranking_accuracy
from repro.interaction.user import SilentUser

CONFIGURATIONS = {
    "none": {"proactive_clarification": False, "reactive_correction": False},
    "proactive_only": {"proactive_clarification": True, "reactive_correction": False},
    "reactive_only": {"proactive_clarification": False, "reactive_correction": True},
    "both": {"proactive_clarification": True, "reactive_correction": True},
}


@pytest.mark.parametrize("label", list(CONFIGURATIONS))
def test_a5_interaction_modes(benchmark, label, bench_corpus):
    db = fresh_loaded_db(explore_variants=False, **CONFIGURATIONS[label])

    def run_query():
        user = make_flagship_user() if label != "none" else SilentUser()
        return db.query(FLAGSHIP_QUERY, user=user)

    result = benchmark.pedantic(run_query, rounds=3, iterations=1)

    user_turns = result.transcript.user_turns()
    captured_recency = result.intent.include_recency
    clarified_exciting = "exciting" in result.intent.clarifications
    expected_with_recency = [m.title for m in bench_corpus.ground_truth_ranking(0.7, 0.3)]
    accuracy = ranking_accuracy(result.titles(), expected_with_recency, top_k=2)

    if label == "both":
        assert clarified_exciting and captured_recency
        assert accuracy == 1.0
        assert user_turns >= 2
    if label == "none":
        assert not captured_recency
        assert user_turns == 0
    if label == "proactive_only":
        assert clarified_exciting and not captured_recency
    if label == "reactive_only":
        assert captured_recency

    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["user_turns"] = user_turns
    benchmark.extra_info["captured_recency"] = captured_recency
    benchmark.extra_info["clarified_exciting"] = clarified_exciting
    benchmark.extra_info["top2_accuracy"] = accuracy
    benchmark.extra_info["sketch_steps"] = len(result.sketch)

    print(f"\n[A5] interaction={label:<15} user_turns={user_turns} "
          f"clarified={clarified_exciting!s:<5} recency={captured_recency!s:<5} "
          f"sketch_steps={len(result.sketch):>2} top2_accuracy={accuracy:.2f}")

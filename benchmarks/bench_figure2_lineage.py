"""Experiment T3/F2 (paper Table 3 + Figure 2): the lineage rows behind an output tuple.

Regenerates the lineage-table excerpt of Figure 2: starting from the top
output tuple of the flagship query, trace its full derivation and print the
rows of the unified provenance schema
``Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)``.
The benchmark measures the lineage-trace lookup itself.
"""


def test_figure2_lineage_rows_for_top_tuple(benchmark, bench_flagship_result):
    result = bench_flagship_result
    top_lid = result.rows()[0]["lid"]

    trace = benchmark(result.lineage.trace, top_lid, 16)

    entries_by_lid = {entry.lid: entry for entry in trace}
    # The chain reaches from the row produced by combine_scores back to the raw
    # external sources (NULL parent + file:// src_uri), as in Figure 2.
    assert entries_by_lid[top_lid].data_type == "row"
    assert entries_by_lid[top_lid].func_id == "combine_scores"
    roots = [entry for entry in trace if entry.parent_lid is None and entry.src_uri]
    assert roots, "the trace must reach external sources"
    assert any("movie_table" in entry.src_uri for entry in roots)
    func_ids = {entry.func_id for entry in trace}
    for expected in ("combine_scores", "gen_recency_score", "gen_excitement_score",
                     "join_text_entities", "select_movie_columns", "load_data"):
        assert expected in func_ids
    # Narrow functions recorded row-level edges, wide ones table-level edges.
    assert any(entry.data_type == "row" for entry in trace)
    assert any(entry.data_type == "table" for entry in trace)

    benchmark.extra_info["trace_length"] = len(trace)
    benchmark.extra_info["total_lineage_entries"] = result.lineage.summary()["total"]

    print(f"\n[F2] lineage rows for output tuple lid={top_lid} "
          f"(store holds {result.lineage.summary()} entries)")
    header = f"{'lid':>6} {'parent_lid':>10} {'func_id':<26} {'ver_id':>6} {'data_type':<9} {'ts':>8} src_uri"
    print("  " + header)
    for entry in trace:
        parent = entry.parent_lid if entry.parent_lid is not None else "NULL"
        print(f"  {entry.lid:>6} {parent:>10} {entry.func_id:<26} {entry.ver_id:>6} "
              f"{entry.data_type:<9} {entry.ts:>8.3f} {entry.src_uri or ''}")


def test_figure2_sql_over_lineage(benchmark, bench_db, bench_flagship_result):
    """The lineage table is itself queryable with the relational engine."""
    from repro.explain.lineage_query import LineageQueryInterface

    qa = LineageQueryInterface(bench_db.models, bench_db.explainer)
    sql = "SELECT data_type, count(*) AS n FROM lineage GROUP BY data_type ORDER BY data_type"
    table = benchmark(qa.sql, sql, bench_flagship_result)
    kinds = {row["data_type"]: row["n"] for row in table}
    assert kinds.get("row", 0) > kinds.get("table", 0)
    print("\n[F2] lineage entry counts by data_type:", kinds)

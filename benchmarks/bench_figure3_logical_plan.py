"""Experiment F3 (paper Figure 3): the logical-plan node JSON emitted by the plan generator.

Regenerates the function-signature JSON for ``classify_boring`` exactly in the
paper's layout (name / description / inputs / output), plus the full 10-node
logical plan, and measures the parse -> sketch -> plan -> verify path.
"""

import json

from benchmarks.conftest import fresh_loaded_db, make_flagship_user
from repro.data.workloads import FLAGSHIP_QUERY
from repro.interaction.channel import InteractionChannel


def test_figure3_logical_plan_signatures(benchmark):
    db = fresh_loaded_db()

    def parse_and_plan():
        channel = InteractionChannel(make_flagship_user())
        return db.parse_and_plan(FLAGSHIP_QUERY, channel)

    outcome, plan, report = benchmark.pedantic(parse_and_plan, rounds=3, iterations=1)

    assert report.approved
    assert len(plan) == 10

    classify = plan.node("classify_boring").signature_json()
    # The exact JSON layout of Figure 3.
    assert list(classify.keys()) == ["name", "description", "inputs", "output"]
    assert classify["name"] == "classify_boring"
    assert classify["inputs"] == ["films_with_image_scene"]
    assert classify["output"] == "films_with_boring_flag"
    assert "poster" in classify["description"].lower()

    payload = json.loads(plan.to_json())
    assert len(payload) == 10
    assert all(set(node) == {"name", "description", "inputs", "output"} for node in payload)

    benchmark.extra_info["plan_nodes"] = len(plan)
    benchmark.extra_info["verifier_tool_calls"] = report.tool_calls

    print("\n[F3] classify_boring signature emitted by the logical plan generator:")
    print(json.dumps(classify, indent=2))
    print(f"  (full plan: {len(plan)} nodes, verifier used {report.tool_calls} tool calls)")

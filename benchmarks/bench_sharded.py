"""Sharding benchmark: scatter-gather population throughput + cache restarts.

PR 9 added shared-nothing engine sharding (``repro.sharding``) and a
pluggable persistent gateway cache (``repro.gateway.persist``).  This
benchmark measures the two claims that change makes:

* **near-linear population throughput** — corpus population scattered
  across 1/2/4 thread-backed shards, under simulated model latency (the
  regime the paper's prototype lives in: model calls dominate, so
  shared-nothing workers overlap their model waits).  The merged scans
  must stay **row-identical** to a single-process service over every
  catalog table — identical over every column except the per-process
  lineage ``lid`` (image payloads compare by URI).
* **warm restarts** — a file-backed gateway cache populated cold, the
  service torn down, and a fresh process pointed at the same path: the
  warm population run must serve exact-cache hits for every text-keyed
  model call (URI-keyed results are volatile by design and re-execute),
  cutting its metered token spend.

The record lands in ``BENCH_sharded.json``; floors live in
``benchmarks/gate.py`` (committed: >= 1.7x at 4 shards; quick: >= 1.2x
at 2).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded.py [--quick]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -q
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.api.service import KathDBService
from repro.core.config import KathDBConfig
from repro.data.mmqa import build_movie_corpus
from repro.sharding import ShardedService

try:
    from benchmarks import gate
except ImportError:  # running as a plain script from benchmarks/
    import gate

RESULT_PATH = Path(__file__).parent / "BENCH_sharded.json"

FULL_CORPUS = 48
QUICK_CORPUS = 16
FULL_SHARDS = (1, 2, 4)
QUICK_SHARDS = (1, 2)
#: Small batches + unit latency put population squarely in the model-wait
#: regime (one capped sleep per batched call): the workload shape whose
#: wall clock sharding is built to divide.
BATCH_SIZE = 4
LATENCY_SCALE = 1.0
SEED = 7


def _config(latency: float = LATENCY_SCALE, **overrides: Any) -> KathDBConfig:
    return KathDBConfig(seed=SEED, simulate_model_latency=latency,
                        vectorized_batch_size=BATCH_SIZE, **overrides)


def table_digest(table) -> List[Dict[str, Any]]:
    """Rows with per-process artifacts normalized away.

    ``lid`` values come from each process's own lineage store and are the
    one column the row-identity guarantee excludes; image payloads
    compare by URI (same source pixel data).
    """
    digest = []
    for row in table:
        normalized = {}
        for key, value in dict(row).items():
            if key == "lid":
                continue
            normalized[key] = getattr(value, "uri", value)
        digest.append(normalized)
    return digest


def catalog_digests(scan, table_names) -> Dict[str, List[Dict[str, Any]]]:
    return {name: table_digest(scan(name)) for name in sorted(table_names)}


# ---------------------------------------------------------------------------
# Arm 1: scatter-gather population throughput + row identity
# ---------------------------------------------------------------------------
def run_population_arm(corpus_size: int, shard_counts) -> Dict[str, Any]:
    corpus = build_movie_corpus(size=corpus_size, seed=SEED)

    # The single-process reference: same config, no sharding layer at all.
    reference = KathDBService(_config())
    reference.load_corpus(corpus)
    reference_digests = catalog_digests(reference.catalog.table,
                                        reference.catalog.table_names())
    reference.shutdown()

    shards_record: Dict[str, Dict[str, Any]] = {}
    row_identical = True
    for count in shard_counts:
        service = ShardedService(_config(), shards=count)
        start = time.perf_counter()
        service.load_corpus(corpus)
        elapsed = time.perf_counter() - start
        digests = catalog_digests(service.scan,
                                  reference_digests.keys())
        identical = digests == reference_digests
        row_identical = row_identical and identical
        shards_record[str(count)] = {
            "seconds": round(elapsed, 4),
            "throughput_docs_per_s": round(corpus_size / elapsed, 2),
            "row_identical": identical,
            "tokens": service.total_tokens(),
        }
        service.shutdown()

    baseline = shards_record[str(shard_counts[0])]["seconds"]
    record: Dict[str, Any] = {"shards": shards_record,
                              "row_identical": row_identical}
    for count in shard_counts[1:]:
        speedup = baseline / shards_record[str(count)]["seconds"]
        record[f"speedup_{count}"] = round(speedup, 3)
    return record


# ---------------------------------------------------------------------------
# Arm 2: persistent gateway cache across a full restart
# ---------------------------------------------------------------------------
def run_restart_arm(corpus_size: int) -> Dict[str, Any]:
    corpus = build_movie_corpus(size=corpus_size, seed=SEED)
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-gwcache-"))
    try:
        cold = KathDBService(_config(latency=0.0,
                                     gateway_cache_backend="file",
                                     gateway_cache_path=cache_dir))
        cold.load_corpus(corpus)
        cold_tokens = cold.total_tokens()
        persisted = cold.gateway_store.stats.persisted
        cold.shutdown()

        # A brand-new service ("restarted process") over the same path.
        warm = KathDBService(_config(latency=0.0,
                                     gateway_cache_backend="file",
                                     gateway_cache_path=cache_dir))
        restored = warm.gateway_store.stats.restored
        warm.load_corpus(corpus)
        warm_tokens = warm.total_tokens()
        warm_exact_hits = warm.gateway.cache.stats.hits
        warm.shutdown()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "cold_tokens": cold_tokens,
        "warm_tokens": warm_tokens,
        "token_ratio": round(cold_tokens / max(warm_tokens, 1), 3),
        "persisted_entries": persisted,
        "restored_entries": restored,
        "warm_exact_hits": warm_exact_hits,
    }


def run_benchmark(corpus_size: int = FULL_CORPUS,
                  shard_counts=FULL_SHARDS) -> Dict[str, Any]:
    population = run_population_arm(corpus_size, shard_counts)
    restart = run_restart_arm(min(corpus_size, QUICK_CORPUS))
    return {
        "corpus_size": corpus_size,
        "shard_counts": list(shard_counts),
        "batch_size": BATCH_SIZE,
        "latency_scale": LATENCY_SCALE,
        "population": population,
        "row_identical": population["row_identical"],
        "restart": restart,
    }


def save(record: Dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def report(record: Dict) -> str:
    population = record["population"]
    speedups = ", ".join(
        f"{count}x-shards {population[f'speedup_{count}']:.2f}x"
        for count in record["shard_counts"][1:])
    restart = record["restart"]
    return (f"[sharded] {record['corpus_size']} docs: {speedups}, "
            f"row-identical={record['row_identical']}; restart "
            f"{restart['token_ratio']:.2f}x fewer tokens "
            f"({restart['warm_exact_hits']} warm exact hits, "
            f"{restart['restored_entries']} entries restored)")


def test_sharded_population_scales():
    """The committed contract: >= 1.7x at 4 shards, identical rows, warm restarts."""
    record = run_benchmark()
    save(record)
    print("\n" + report(record))
    failures = gate.evaluate("sharded", record, shape="full")
    assert not failures, "\n".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=None, help="corpus docs")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus + 1/2 shards (CI smoke run)")
    args = parser.parse_args()
    corpus_size = args.size or (QUICK_CORPUS if args.quick else FULL_CORPUS)
    shard_counts = QUICK_SHARDS if args.quick else FULL_SHARDS
    record = run_benchmark(corpus_size=corpus_size, shard_counts=shard_counts)
    print(report(record))
    if not args.quick:
        # Smoke runs validate via the exit code only: the committed record
        # holds the full-size workload, which a quick run must not overwrite.
        save(record)
        print(f"wrote {RESULT_PATH}")
    failures = gate.evaluate("sharded", record,
                             shape="quick" if args.quick else "full")
    if failures:
        print("\n".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""On-the-fly error repair and semantic-anomaly escalation (paper Section 5).

This example deliberately injects the paper's two failure examples into the
generated functions and shows how KathDB reacts:

1. a *syntactic* fault -- ``classify_boring`` chokes on an unsupported ``.heic``
   poster file; KathDB catches the exception, asks the coder for a patched
   implementation (a new function version), notifies the user, and resumes;
2. a *semantic* anomaly -- ``gen_recency_score`` is generated with the scoring
   direction reversed (older films score higher); the execution monitor spots
   that the score decreases as the year increases, asks the user, and the user
   chooses "adjust", which regenerates the function and reprocesses the step.

Run with::

    python examples/interactive_repair.py
"""

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.fao.codegen import FAULT_SEMANTIC_REVERSED, FAULT_SYNTACTIC_FRAGILE
from repro.interaction.channel import InteractionKind


def run_syntactic_demo() -> None:
    print("=" * 72)
    print("1. syntactic fault: unsupported poster format during classify_boring")
    print("=" * 72)
    corpus = build_movie_corpus(size=20, seed=7)
    config = KathDBConfig(seed=7, explore_variants=False, max_repair_rounds=3,
                          variant_overrides={"classify_boring": "scene_statistics"},
                          fault_injection={"classify_boring": FAULT_SYNTACTIC_FRAGILE})
    db = KathDB(config)
    db.load_corpus(corpus)
    # Make one poster an unsupported format, as in the paper's example.  The
    # affected row sits beyond the optimizer's profiling sample, so the fault
    # only surfaces at execution time and must be repaired on the fly.
    posters = db.catalog.table("poster_images")
    victim = posters.rows[10]
    victim["image_uri"] = victim["image_uri"].replace(".png", ".heic")

    user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    result = db.query(FLAGSHIP_QUERY, user=user)

    record = result.record_for("classify_boring")
    print(f"classify_boring finished at version {record.function_version} "
          f"after {len(record.repairs)} on-the-fly repair(s)")
    for repair in record.repairs:
        print("  repair: " + repair)
    print("notifications sent to the user:")
    for notice in user.notices:
        print("  - " + notice)
    print()
    print("final top-2:", result.titles()[:2])
    print()


def run_semantic_demo() -> None:
    print("=" * 72)
    print("2. semantic anomaly: reversed recency score caught by the monitor")
    print("=" * 72)
    corpus = build_movie_corpus(size=20, seed=7)
    config = KathDBConfig(seed=7, explore_variants=False,
                          fault_injection={"gen_recency_score": FAULT_SEMANTIC_REVERSED})
    db = KathDB(config)
    # The optimizer's critic would normally catch this before execution; turn
    # its repair loop off so the *runtime* monitor is the one that reacts.
    db.optimizer.max_repair_rounds = 0
    db.load_corpus(corpus)

    user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION],
                        anomaly_choice="adjust")
    result = db.query(FLAGSHIP_QUERY, user=user)

    record = result.record_for("gen_recency_score")
    print("anomalies escalated to the user:")
    for anomaly in record.anomalies:
        print("  - " + anomaly)
    print("repairs performed after the user's decision:")
    for repair in record.repairs:
        print("  - " + repair)
    print()
    print("anomaly dialogue from the transcript:")
    for interaction in result.transcript.of_kind(InteractionKind.SEMANTIC_ANOMALY):
        print("  system: " + interaction.system_message[:100] + "...")
        print("  user:   " + (interaction.user_reply or ""))
    print()
    recency = {row["title"]: row["recency_score"]
               for row in result.intermediates["films_with_recency"]}
    newest = max(recency, key=recency.get)
    print(f"after adjustment the most recent film ({newest}) has the highest recency score "
          f"({recency[newest]:.2f})")
    print("final top-2:", result.titles()[:2])
    print()


def main() -> None:
    run_syntactic_demo()
    run_semantic_demo()


if __name__ == "__main__":
    main()

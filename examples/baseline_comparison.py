"""Compare KathDB against the two baseline paradigms from the paper's introduction.

* **SQL + ML-UDF** -- an expert hand-writes the whole pipeline: accurate, but
  every query costs manual developer effort and there is no NL interface.
* **Black-box end-to-end LLM** -- one model call per record produces the answer
  directly: no manual effort, but expensive, opaque (no lineage), and less
  accurate on compositional queries (it folds the boring-poster *filter* into
  the ranking, and it has no channel for the user's recency correction).
* **KathDB** -- NL in, relational semantic layer + FAO plan in the middle,
  lineage-backed explanations out.

Run with::

    python examples/baseline_comparison.py
"""

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.baselines import BlackBoxLLMBaseline, SQLUDFBaseline
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
    ranking_accuracy,
)
from repro.models.base import ModelSuite


def main() -> None:
    corpus = build_movie_corpus(size=20, seed=7)
    expected = [m.title for m in corpus.ground_truth_ranking()]

    # KathDB.
    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(corpus)
    population_tokens = db.total_tokens()
    user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    kathdb_result = db.query(FLAGSHIP_QUERY, user=user)
    kathdb_query_tokens = db.total_tokens() - population_tokens

    # SQL + UDF baseline (its own fresh model suite so token counts are isolated).
    sql_models = ModelSuite.create(seed=7)
    sql_result = SQLUDFBaseline(sql_models).flagship_query(corpus)

    # Black-box end-to-end baseline.
    blackbox_models = ModelSuite.create(seed=7)
    blackbox_result = BlackBoxLLMBaseline(blackbox_models).answer(
        FLAGSHIP_QUERY, corpus, {"exciting": FLAGSHIP_CLARIFICATION})

    rows = [
        {
            "system": "KathDB",
            "top-3 accuracy": ranking_accuracy(kathdb_result.titles(), expected, top_k=3),
            "query tokens": kathdb_query_tokens,
            "manual steps": 0,
            "user turns": kathdb_result.transcript.user_turns(),
            "explanation artifacts": 5,  # sketch, plan, records, lineage, per-field derivations
        },
        {
            "system": "SQL + ML-UDF (expert)",
            "top-3 accuracy": ranking_accuracy(sql_result.titles(), expected, top_k=3),
            "query tokens": sql_result.tokens,
            "manual steps": sql_result.manual_operations,
            "user turns": 0,
            "explanation artifacts": 2,  # the hand-written code and the final table
        },
        {
            "system": "black-box end-to-end LLM",
            "top-3 accuracy": ranking_accuracy(blackbox_result.titles(), expected, top_k=3),
            "query tokens": blackbox_result.tokens,
            "manual steps": 0,
            "user turns": 1,
            "explanation artifacts": 1,  # only the final answer
        },
    ]

    print(f"flagship query: {FLAGSHIP_QUERY}")
    print(f"ground-truth top-3: {expected[:3]}")
    print()
    header = (f"{'system':<28} {'top-3 acc':>9} {'tokens':>9} {'manual steps':>12} "
              f"{'user turns':>10} {'explanations':>12}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['system']:<28} {row['top-3 accuracy']:>9.2f} {row['query tokens']:>9} "
              f"{row['manual steps']:>12} {row['user turns']:>10} "
              f"{row['explanation artifacts']:>12}")
    print()
    print("KathDB top-3:    ", kathdb_result.titles()[:3])
    print("SQL+UDF top-3:   ", sql_result.titles()[:3])
    print("black-box top-3: ", blackbox_result.titles()[:3])
    print()
    print("Note: KathDB's one-time view population cost "
          f"({population_tokens} tokens) is shared across every later query, "
          "while the black box pays its full per-record cost for each query.")


if __name__ == "__main__":
    main()

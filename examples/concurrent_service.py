"""The layered Session/Service API: isolated sessions, concurrent batches,
prepared queries.

The original ``KathDB`` facade is a single-user object: queries mutate shared
state, so only one can be in flight.  The service layer loads the corpus
*once* and then serves any number of callers:

* each request runs in its own :class:`~repro.api.session.Session` — private
  intermediates, private transcript, scoped lineage, private token ledger;
* identical queries share one *prepared* plan (parse + optimize once,
  execute many);
* ``query_batch(..., jobs=4)`` runs requests on a worker pool and returns
  row-identical results to a serial run.

Run with::

    python examples/concurrent_service.py
"""

from repro import (
    KathDBConfig,
    KathDBService,
    QueryOptions,
    QueryRequest,
    ScriptedUser,
    build_movie_corpus,
)
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.utils.timer import Timer


def main() -> None:
    corpus = build_movie_corpus(size=20, seed=7)
    # simulate_model_latency makes every simulated model call sleep its
    # synthetic latency, like a real network-bound model call would — that is
    # what the worker pool overlaps.
    service = KathDBService(KathDBConfig(seed=7, monitor_enabled=False,
                                         simulate_model_latency=3.0))
    service.load_corpus(corpus)

    print("=" * 72)
    print("1. two isolated sessions, interleaved")
    print("=" * 72)
    alice = service.session(name="alice")
    bob = service.session(name="bob", user=ScriptedUser(
        {"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION]))
    a1 = alice.query("Which films have a boring poster?")
    b1 = bob.query(FLAGSHIP_QUERY)
    a2 = alice.query("List the films released after 2000.")
    print(f"alice: {len(a1.result.final_table)} boring posters, "
          f"{len(a2.result.final_table)} recent films, "
          f"{alice.total_tokens()} tokens, "
          f"{len(alice.intermediates())} private intermediates")
    print(f"bob:   top ranked = {b1.result.titles()[:2]}, "
          f"{bob.transcript.user_turns()} interaction turn(s)")
    print(f"shared catalog untouched: "
          f"{not service.catalog.has_table('films_with_boring_flag')}")

    print()
    print("=" * 72)
    print("2. prepared queries: parse + optimize once, execute many")
    print("=" * 72)
    for attempt in range(3):
        response = service.query("Which films have a boring poster?")
        print(f"  run {attempt + 1}: {response.describe()}")
    print(service.prepared.describe())

    print()
    print("=" * 72)
    print("3. serial vs concurrent batch (same requests, same rows)")
    print("=" * 72)
    # The flagship query scores every row with simulated model calls, so its
    # execution actually waits on (synthetic) model latency — the realistic
    # case, and the one a worker pool can overlap.
    def flagship_requests():
        return [QueryRequest(nl_query=FLAGSHIP_QUERY,
                             user=ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION},
                                               [FLAGSHIP_CORRECTION]),
                             options=QueryOptions())
                for _ in range(8)]

    requests = flagship_requests()
    serial_timer = Timer()
    with serial_timer:
        serial = service.query_batch(requests, jobs=1)
    parallel_timer = Timer()
    with parallel_timer:
        parallel = service.query_batch(flagship_requests(), jobs=4)
    identical = all(
        s.result.rows() == p.result.rows() for s, p in zip(serial, parallel))
    print(f"  serial:   {serial_timer.elapsed:.2f} s "
          f"({len(requests) / serial_timer.elapsed:.1f} q/s)")
    print(f"  4 workers: {parallel_timer.elapsed:.2f} s "
          f"({len(requests) / parallel_timer.elapsed:.1f} q/s, "
          f"{serial_timer.elapsed / parallel_timer.elapsed:.1f}x)")
    print(f"  row-identical results: {identical}")
    service.shutdown()


if __name__ == "__main__":
    main()

"""The paper's Section 6 walk-through, end to end and in full detail.

Reproduces every stage of Figure 1 for the query

    "Sort the films in the table by how exciting they are,
     but the poster should be 'boring'."

showing: the clarification question and the user's reply (Figure 4), the
8-step and 11-step query sketches, the logical plan with the Figure 3 JSON
signature of ``classify_boring``, the chosen physical implementations, the
execution records, the Figure 6 result, and the Figure 2-style lineage rows.

Run with::

    python examples/movie_excitement_walkthrough.py
"""

import json

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.interaction.channel import InteractionChannel


def main() -> None:
    corpus = build_movie_corpus(size=20, seed=7)
    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(corpus)

    user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    channel = InteractionChannel(user)

    # -- stage 1: interactive parsing (Figure 4) -------------------------------
    parse_outcome, logical_plan, verification = db.parse_and_plan(FLAGSHIP_QUERY, channel)
    print("=== interaction transcript so far (Figure 4) ===")
    print(channel.transcript.describe())
    print()
    print(f"sketch v1 had {len(parse_outcome.sketch_history[0])} steps; "
          f"sketch v{parse_outcome.sketch.version} has {len(parse_outcome.sketch)} steps")
    print()
    print(parse_outcome.sketch.describe())
    print()

    # -- stage 2: the logical plan (Figure 3) -----------------------------------
    print("=== logical plan ===")
    print(logical_plan.describe())
    print()
    print("=== Figure 3: the classify_boring signature emitted by the plan generator ===")
    print(json.dumps(logical_plan.node("classify_boring").signature_json(), indent=2))
    print()
    print(verification.describe())
    print()

    # -- stage 3: cost-based physical planning ----------------------------------
    physical_plan, optimization = db.optimizer.optimize(logical_plan)
    print("=== physical plan (chosen implementations) ===")
    print(physical_plan.describe())
    print()
    print(optimization.describe())
    print()

    # -- stage 4: execution with lineage -----------------------------------------
    result = db.engine.execute(physical_plan, channel, nl_query=FLAGSHIP_QUERY)
    result.sketch = parse_outcome.sketch
    result.intent = parse_outcome.intent
    db.last_result = result
    print("=== execution records ===")
    for record in result.records:
        print("  " + record.describe())
    print()

    print("=== Figure 6: final output ===")
    print(result.final_table.select_columns(
        ["lid", "title", "year", "final_score", "boring_poster"], name="figure6").pretty(5))
    print()

    # -- stage 5: explanations (Figure 5) and lineage rows (Figure 2) -------------
    print("=== Figure 5 (left): coarse-grained pipeline explanation ===")
    print(db.explain_pipeline(result))
    print()

    top_lid = result.rows()[0]["lid"]
    print(f"=== Figure 5 (right): fine-grained explanation of tuple lid={top_lid} ===")
    print(db.explain_tuple(result, top_lid).describe())
    print()

    print("=== Figure 2: lineage rows for the top tuple ===")
    header = f"{'lid':>6} {'parent_lid':>10} {'func_id':<24} {'ver':>3} {'type':<6} {'ts':>8} src_uri"
    print(header)
    for entry in result.lineage.trace(top_lid, max_depth=12):
        parent = entry.parent_lid if entry.parent_lid is not None else "NULL"
        print(f"{entry.lid:>6} {parent:>10} {entry.func_id:<24} {entry.ver_id:>3} "
              f"{entry.data_type:<6} {entry.ts:>8.3f} {entry.src_uri or ''}")
    print()

    print("=== NL questions over the lineage ===")
    for question in (f"Explain tuple {top_lid}?",
                     "Which function produced 'final_score'?",
                     "How many rows did filter_boring produce?"):
        print(f"Q: {question}")
        print("A: " + db.ask(question, result).splitlines()[0] + " ...")
        print()


if __name__ == "__main__":
    main()

"""Quickstart: load the synthetic MMQA-style corpus and run the paper's flagship query.

Run with::

    python examples/quickstart.py
"""

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY


def main() -> None:
    # 1. Build the corpus (tables + plot text + synthetic posters) and load it.
    #    Loading registers the base relations and populates the scene-graph /
    #    text-graph views -- the paper's "pre-written view population" step.
    corpus = build_movie_corpus(size=20, seed=7)
    db = KathDB(KathDBConfig(seed=7))
    report = db.load_corpus(corpus)
    print(report.describe())
    print()

    # 2. The scripted user reproduces the paper's Section 6 dialogue: one
    #    clarification answer plus one reactive correction.
    user = ScriptedUser(
        clarification_answers={"exciting": FLAGSHIP_CLARIFICATION},
        corrections=[FLAGSHIP_CORRECTION],
    )

    # 3. Ask the NL query end to end.
    result = db.query(FLAGSHIP_QUERY, user=user)

    print("=== final ranked result (Figure 6) ===")
    figure6 = result.final_table.select_columns(
        ["lid", "title", "year", "final_score", "boring_poster"], name="figure6")
    print(figure6.pretty(limit=5))
    print()

    print("=== how the answer was produced ===")
    print(db.explain_pipeline(result))
    print()

    top_lid = result.rows()[0]["lid"]
    print(f"=== fine-grained explanation of tuple lid={top_lid} ===")
    print(db.explain_tuple(result, top_lid).describe())
    print()

    print(f"total model tokens spent: {db.total_tokens()}")


if __name__ == "__main__":
    main()

"""Offline profiling and function roll-backs across repeated queries.

Two of the paper's Section 4 research questions in action:

1. *"How can KathDB reduce online profiling effort (e.g., through offline
   profiling) to speed up query plan generation?"* -- run the same query twice
   with the profile cache enabled and compare how much optimizer work the
   second run saves.
2. *Safe roll-backs to a prior version* -- after the optimizer picks the
   embedding-based excitement scorer, roll back to an earlier (cheaper)
   version of that function and re-execute the plan to compare answers.

Run with::

    python examples/repeated_queries_offline_profiling.py
"""

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.interaction.channel import InteractionChannel


def make_user() -> ScriptedUser:
    return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])


def main() -> None:
    corpus = build_movie_corpus(size=20, seed=7)
    db = KathDB(KathDBConfig(seed=7, enable_profile_cache=True))
    db.load_corpus(corpus)

    print("=== 1. offline profiling: the same query twice ===")
    for attempt in (1, 2):
        channel = InteractionChannel(make_user())
        outcome, logical_plan, _ = db.parse_and_plan(FLAGSHIP_QUERY, channel)
        physical, report = db.optimizer.optimize(logical_plan)
        result = db.engine.execute(physical, channel, nl_query=FLAGSHIP_QUERY)
        result.sketch, result.intent, result.logical_plan = outcome.sketch, outcome.intent, logical_plan
        db.last_result = result
        print(f"  run {attempt}: optimizer wall clock = {report.wall_clock_s * 1000:6.1f} ms, "
              f"candidates profiled online = {report.candidates_evaluated - report.profile_cache_hits}, "
              f"cache hits = {report.profile_cache_hits}, top-2 = {result.titles()[:2]}")
    print("  " + db.profile_cache.describe().splitlines()[0])
    print()

    print("=== 2. roll back gen_excitement_score and re-run the plan ===")
    versions = db.registry.versions("gen_excitement_score")
    print(f"  registry holds {len(versions)} version(s) of gen_excitement_score:")
    for function in versions:
        print(f"    v{function.version}: {function.implementation_kind}/{function.variant}")
    # Find an earlier version with a different variant than the one in use.
    original = db.last_result
    current = original.record_for("gen_excitement_score")
    original_top2 = original.titles()[:2]
    alternative = next((f for f in versions if f.variant != current.function_variant), None)
    if alternative is None:
        print("  (only one variant was generated; nothing to roll back to)")
        return
    rerun = db.rerun_with_versions(original,
                                   versions={"gen_excitement_score": alternative.version})
    print(f"  current variant : {current.function_variant} -> top-2 {original_top2}")
    print(f"  rolled back to  : v{alternative.version} ({alternative.variant}) "
          f"-> top-2 {rerun.titles()[:2]}")
    print("  (the cheaper keyword-overlap scorer degrades the ranking, which is exactly why "
          "the optimizer's accuracy floor rejects it by default)")


if __name__ == "__main__":
    main()

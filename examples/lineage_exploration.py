"""Explore query provenance: NL questions and SQL over the lineage table.

The lineage store is itself a relational table (paper Table 3), so provenance
can be queried with exactly the same machinery as the data: this example runs
the flagship query, then asks NL questions about it and issues SQL directly
against the ``lineage`` relation.

Run with::

    python examples/lineage_exploration.py
"""

from repro import KathDB, KathDBConfig, ScriptedUser, build_movie_corpus
from repro.data.workloads import FLAGSHIP_CLARIFICATION, FLAGSHIP_CORRECTION, FLAGSHIP_QUERY
from repro.explain.lineage_query import LineageQueryInterface


def main() -> None:
    corpus = build_movie_corpus(size=20, seed=7)
    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(corpus)
    user = ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    result = db.query(FLAGSHIP_QUERY, user=user)

    top = result.rows()[0]
    runner_up = result.rows()[1]
    print(f"result head: {[r['title'] for r in result.rows()[:3]]}")
    print(f"lineage entries recorded: {result.lineage.summary()}")
    print()

    print("=== NL questions over lineage ===")
    questions = [
        "Explain the full pipeline.",
        f"Explain tuple {top['lid']}?",
        f"How was tuple {runner_up['lid']} derived?",
        "Which function produced 'excitement_score'?",
        "Which function produced 'boring_poster'?",
        "How many rows did classify_boring produce?",
        "Which function versions were used?",
    ]
    for question in questions:
        answer = db.ask(question, result)
        first_lines = "\n    ".join(answer.splitlines()[:4])
        print(f"Q: {question}\nA:  {first_lines}\n")

    print("=== SQL directly over the lineage relation ===")
    qa = LineageQueryInterface(db.models, db.explainer)
    queries = [
        "SELECT func_id, count(*) AS n FROM lineage GROUP BY func_id ORDER BY n DESC LIMIT 8",
        "SELECT data_type, count(*) AS n FROM lineage GROUP BY data_type",
        f"SELECT lid, parent_lid, func_id, ver_id, data_type FROM lineage "
        f"WHERE lid = {top['lid']}",
    ]
    for sql in queries:
        print(f"sql> {sql}")
        print(qa.sql(sql, result).pretty(limit=10))
        print()


if __name__ == "__main__":
    main()
